"""Serialization round-trips for verify cases, corpus entries and WCRT
results.

The corpus format is the long-lived surface of the verification subsystem
— reproducers written today must replay unchanged in future versions — so
these tests pin byte-stability (canonical key order, trailing newline) as
well as semantic round-trip fidelity.
"""

import json
import random

import pytest

from repro.analysis.config import AnalysisConfig, CproApproach, CrpdApproach
from repro.analysis.wcrt import analyze_taskset
from repro.errors import ModelError
from repro.model.platform import BusPolicy
from repro.serialization import (
    wcrt_result_from_json,
    wcrt_result_to_dict,
    wcrt_result_to_json,
)
from repro.verify.cases import (
    CASE_KINDS,
    case_from_dict,
    case_from_json,
    case_to_dict,
    case_to_json,
    config_from_dict,
    config_to_dict,
)
from repro.verify.corpus import (
    CorpusEntry,
    entry_from_json,
    entry_name,
    load_corpus,
    save_entry,
)
from repro.verify.generators import generate_case


def _cases(seed=0):
    rng = random.Random(seed)
    return [generate_case(kind, rng) for kind in CASE_KINDS]


class TestCaseRoundTrip:
    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_json_round_trip_is_identity(self, kind):
        # Task uses identity equality, so semantic equality of cases is
        # checked through their canonical JSON form.
        case = generate_case(kind, random.Random(3))
        restored = case_from_json(case_to_json(case))
        assert case_to_json(restored) == case_to_json(case)
        assert restored.kind == kind

    @pytest.mark.parametrize("kind", CASE_KINDS)
    def test_json_is_byte_stable(self, kind):
        """Dump → load → dump reproduces the exact bytes, and shuffled
        dict key order on the way in cannot change the bytes out."""
        case = generate_case(kind, random.Random(5))
        text = case_to_json(case)
        assert text == case_to_json(case_from_json(text))
        assert text.endswith("\n")
        document = json.loads(text)
        scrambled = json.dumps(document, sort_keys=False, indent=None)
        assert case_to_json(case_from_json(scrambled)) == text

    def test_taskset_case_rebuilds_taskset(self):
        case = generate_case("taskset", random.Random(11))
        restored = case_from_json(case_to_json(case))
        original, rebuilt = case.taskset(), restored.taskset()
        assert [t.name for t in original] == [t.name for t in rebuilt]
        assert [t.ecbs for t in original] == [t.ecbs for t in rebuilt]
        # Semantics survive too: same analysis verdict and bounds.
        first = analyze_taskset(original, case.platform, case.config)
        second = analyze_taskset(rebuilt, restored.platform, restored.config)
        assert wcrt_result_to_json(first) == wcrt_result_to_json(second)

    def test_config_round_trip_covers_enums(self):
        config = AnalysisConfig(
            persistence=False,
            crpd_approach=CrpdApproach.ECB_UNION_MULTISET,
            cpro_approach=CproApproach.MULTISET,
            memoization=False,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_malformed_case_rejected(self):
        with pytest.raises(ModelError):
            case_from_json("{not json")
        with pytest.raises(ModelError):
            case_from_json(json.dumps({"format": "wrong-tag", "version": 1}))
        good = json.loads(case_to_json(generate_case("demand", random.Random(0))))
        good["version"] = 99
        with pytest.raises(ModelError):
            case_from_dict(good)
        good["version"] = 1
        good["kind"] = "unheard-of"
        with pytest.raises(ModelError):
            case_from_dict(good)


class TestCorpusEntries:
    def test_entry_round_trip(self, tmp_path):
        for case in _cases(seed=8):
            entry = CorpusEntry(
                case=case,
                oracles=("fixed-point-sanity",),
                note="round-trip test",
            )
            path = save_entry(entry, tmp_path)
            assert path.name == entry_name(entry)
            restored = entry_from_json(path.read_text())
            assert case_to_json(restored.case) == case_to_json(case)
            assert restored.oracles == entry.oracles
            assert restored.note == entry.note

    def test_entry_name_is_content_addressed(self, tmp_path):
        case = generate_case("demand", random.Random(1))
        entry = CorpusEntry(case=case, oracles=("eq10-demand",))
        renamed = CorpusEntry(case=case, oracles=("eq10-demand",), note="x")
        # The hash covers the case, not the metadata.
        assert entry_name(entry) == entry_name(renamed)
        other = CorpusEntry(
            case=generate_case("demand", random.Random(2)),
            oracles=("eq10-demand",),
        )
        assert entry_name(entry) != entry_name(other)

    def test_save_is_idempotent(self, tmp_path):
        case = generate_case("taskset", random.Random(6))
        entry = CorpusEntry(case=case, oracles=("memo-identity",))
        first = save_entry(entry, tmp_path)
        second = save_entry(entry, tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_load_corpus_sorted_and_validated(self, tmp_path):
        for seed in (3, 1, 2):
            case = generate_case("demand", random.Random(seed))
            save_entry(
                CorpusEntry(case=case, oracles=("eq10-demand",)), tmp_path
            )
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 3
        paths = [path for path, _ in loaded]
        assert paths == sorted(paths)
        (tmp_path / "broken.json").write_text("{}")
        with pytest.raises(ModelError):
            load_corpus(tmp_path)


class TestWcrtResultSerialization:
    def _result(self):
        case = generate_case("taskset", random.Random(9))
        return analyze_taskset(case.taskset(), case.platform, case.config)

    def test_round_trip_preserves_fields(self):
        result = self._result()
        document = wcrt_result_from_json(wcrt_result_to_json(result))
        assert document["schedulable"] == result.schedulable
        assert document["outer_iterations"] == result.outer_iterations
        expected = {
            task.name: bound
            for task, bound in result.response_times.items()
        }
        assert document["response_times"] == expected

    def test_json_is_byte_stable_across_dict_orderings(self):
        result = self._result()
        text = wcrt_result_to_json(result)
        document = wcrt_result_to_dict(result)
        # Rebuild the dict with reversed insertion order — canonical
        # serialisation must not care.
        reordered = dict(reversed(list(document.items())))
        reordered["response_times"] = dict(
            reversed(list(document["response_times"].items()))
        )
        assert json.dumps(reordered, indent=2, sort_keys=True) == text
        assert wcrt_result_to_json(result) == text

    def test_failed_task_serialised_by_name(self):
        from dataclasses import replace

        case = generate_case("taskset", random.Random(9))
        overloaded = case.with_tasks(
            tuple(replace(t, pd=t.deadline, md=0, md_r=0) for t in case.tasks)
        )
        result = analyze_taskset(
            overloaded.taskset(), overloaded.platform, overloaded.config
        )
        assert not result.schedulable
        document = wcrt_result_from_json(wcrt_result_to_json(result))
        if result.failed_task is not None:
            assert document["failed_task"] == result.failed_task.name

    def test_malformed_result_rejected(self):
        with pytest.raises(ModelError):
            wcrt_result_from_json("nope")
        with pytest.raises(ModelError):
            wcrt_result_from_json(json.dumps({"format": "repro-taskset"}))
        with pytest.raises(ModelError):
            wcrt_result_from_json(
                json.dumps({"format": "repro-wcrt-result", "version": 99})
            )
