"""Unit tests for JSON serialisation of task sets and platforms."""

import json
import random

import pytest

from repro.errors import ModelError
from repro.generation import generate_taskset
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet
from repro.serialization import (
    load_taskset,
    platform_from_dict,
    platform_to_dict,
    save_taskset,
    task_from_dict,
    task_to_dict,
    taskset_from_json,
    taskset_to_json,
)


@pytest.fixture()
def platform():
    return Platform(
        num_cores=3,
        cache=CacheGeometry(num_sets=128, block_size=64),
        d_mem=20,
        bus_policy=BusPolicy.TDMA,
        slot_size=3,
    )


@pytest.fixture()
def taskset(platform):
    return generate_taskset(random.Random(4), platform, 0.3)


class TestPlatformRoundTrip:
    def test_round_trip(self, platform):
        assert platform_from_dict(platform_to_dict(platform)) == platform

    def test_malformed_rejected(self):
        with pytest.raises(ModelError):
            platform_from_dict({"num_cores": 2})

    def test_bad_policy_rejected(self, platform):
        data = platform_to_dict(platform)
        data["bus_policy"] = "quantum"
        with pytest.raises(ModelError):
            platform_from_dict(data)


class TestTaskRoundTrip:
    def test_all_fields_survive(self):
        task = Task(
            name="x", pd=10, md=5, md_r=2, period=100, deadline=90,
            priority=7, core=2,
            ecbs=frozenset({1, 2, 3}), ucbs=frozenset({1}), pcbs=frozenset({2}),
        )
        clone = task_from_dict(task_to_dict(task))
        for field in ("name", "pd", "md", "md_r", "period", "deadline",
                      "priority", "core", "ecbs", "ucbs", "pcbs"):
            assert getattr(clone, field) == getattr(task, field)

    def test_missing_field_rejected(self):
        with pytest.raises(ModelError):
            task_from_dict({"name": "x"})

    def test_defaults_applied(self):
        record = {
            "name": "y", "pd": 1, "md": 2, "period": 10, "deadline": 10,
            "priority": 1,
        }
        task = task_from_dict(record)
        assert task.core == 0
        assert task.md_r == 2
        assert task.ecbs == frozenset()


class TestTasksetRoundTrip:
    def test_full_round_trip(self, taskset, platform):
        text = taskset_to_json(taskset, platform)
        loaded_set, loaded_platform = taskset_from_json(text)
        assert loaded_platform == platform
        assert len(loaded_set) == len(taskset)
        for original, loaded in zip(taskset, loaded_set):
            assert task_to_dict(original) == task_to_dict(loaded)

    def test_analysis_agrees_after_round_trip(self, taskset, platform):
        from repro.analysis import analyze_taskset

        text = taskset_to_json(taskset, platform)
        loaded_set, loaded_platform = taskset_from_json(text)
        original = analyze_taskset(taskset, platform)
        loaded = analyze_taskset(loaded_set, loaded_platform)
        assert original.schedulable == loaded.schedulable
        assert sorted(original.response_times.values()) == sorted(
            loaded.response_times.values()
        )

    def test_document_structure(self, taskset, platform):
        document = json.loads(taskset_to_json(taskset, platform))
        assert document["format"] == "repro-taskset"
        assert document["version"] == 1
        assert len(document["tasks"]) == len(taskset)

    def test_wrong_tag_rejected(self):
        with pytest.raises(ModelError):
            taskset_from_json(json.dumps({"format": "other", "version": 1}))

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError):
            taskset_from_json(
                json.dumps({"format": "repro-taskset", "version": 99})
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ModelError):
            taskset_from_json("{nope")

    def test_file_round_trip(self, taskset, platform, tmp_path):
        path = tmp_path / "set.json"
        save_taskset(taskset, platform, path)
        loaded_set, loaded_platform = load_taskset(path)
        assert loaded_platform == platform
        assert len(loaded_set) == len(taskset)


class TestFormatEdgeCases:
    def test_indentation_parameter(self, taskset, platform):
        compact = taskset_to_json(taskset, platform, indent=0)
        assert json.loads(compact)["format"] == "repro-taskset"

    def test_tasks_default_missing_sections(self):
        document = json.dumps(
            {
                "format": "repro-taskset",
                "version": 1,
                "platform": {
                    "num_cores": 1,
                    "cache": {"num_sets": 16, "block_size": 32},
                    "d_mem": 10,
                    "bus_policy": "fp",
                    "slot_size": 1,
                },
                "tasks": [
                    {
                        "name": "t",
                        "pd": 1,
                        "md": 0,
                        "period": 10,
                        "deadline": 10,
                        "priority": 1,
                    }
                ],
            }
        )
        loaded_set, loaded_platform = taskset_from_json(document)
        assert len(loaded_set) == 1
        assert loaded_platform.num_cores == 1
