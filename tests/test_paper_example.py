"""Reproduction of the paper's worked example (Fig. 1 and Eq. 11-15).

Three tasks: τ1 and τ2 on core 0, τ3 on core 1; τ1 has the highest priority
and τ3 the lowest.  The paper derives, for the response time R2 of τ2 with a
round-robin bus of slot size 1:

* γ_{2,1,x} = 2                                  (Eq. 2)
* BAS_2^x(R2) = 32                               (Eq. 12, baseline)
* persistence-aware total on core x = 26          (Eq. 15 / Lemma 1)
* BAO_3^y(R2) = 24                               (Eq. 13, baseline)
* persistence-aware remote demand = 9             (Lemma 2)
"""

import pytest

from repro.analysis.config import AnalysisConfig
from repro.businterference.arbiters import blocking_accesses, total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bao, bas
from repro.crpd.approaches import CrpdCalculator
from repro.model.platform import BusPolicy, CacheGeometry, Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproCalculator
from repro.persistence.demand import multi_job_demand

R2 = 36  # window length such that E_1(R2) = 3 and N_{3,3}(R2) = 4


@pytest.fixture()
def example():
    """Task set and platform of Fig. 1 (RR bus, slot size 1, d_mem 1)."""
    tau1 = Task(
        name="tau1",
        pd=4,
        md=6,
        md_r=1,
        period=12,
        deadline=12,
        priority=1,
        core=0,
        ecbs=frozenset({5, 6, 7, 8, 9, 10}),
        ucbs=frozenset({5, 6, 7, 8, 10}),
        pcbs=frozenset({5, 6, 7, 8, 10}),
    )
    tau2 = Task(
        name="tau2",
        pd=32,
        md=8,
        period=64,
        deadline=64,
        priority=2,
        core=0,
        ecbs=frozenset({1, 2, 3, 4, 5, 6}),
        ucbs=frozenset({5, 6}),
    )
    tau3 = Task(
        name="tau3",
        pd=4,
        md=6,
        md_r=1,
        period=10,
        deadline=10,
        priority=3,
        core=1,
        ecbs=frozenset({5, 6, 7, 8, 9, 10}),
        ucbs=frozenset({5, 6, 7, 8, 10}),
        pcbs=frozenset({5, 6, 7, 8, 10}),
    )
    taskset = TaskSet([tau1, tau2, tau3])
    platform = Platform(
        num_cores=2,
        cache=CacheGeometry(num_sets=16, block_size=32),
        d_mem=1,
        bus_policy=BusPolicy.RR,
        slot_size=1,
    )
    return taskset, platform, tau1, tau2, tau3


def _context(taskset, platform, persistence):
    ctx = AnalysisContext(taskset=taskset, platform=platform, persistence=persistence)
    # Paper example: R3 = 10 makes N_{3,3}(R2) = 4 full remote jobs.
    tau3 = taskset.tasks[2]
    ctx.set_response_time(tau3, 10)
    return ctx


def test_crpd_gamma_is_two(example):
    taskset, platform, tau1, tau2, tau3 = example
    crpd = CrpdCalculator(taskset)
    assert crpd.gamma(tau2, tau1) == 2


def test_bas_baseline_matches_eq12(example):
    taskset, platform, tau1, tau2, tau3 = example
    ctx = _context(taskset, platform, persistence=False)
    assert bas(ctx, tau2, R2) == 32


def test_multi_job_demand_matches_fig1(example):
    taskset, platform, tau1, tau2, tau3 = example
    # Three jobs of τ1 in isolation: 6 + 1 + 1 = 8 accesses.
    assert multi_job_demand(tau1, 3) == 8


def test_cpro_matches_fig1(example):
    taskset, platform, tau1, tau2, tau3 = example
    cpro = CproCalculator(taskset)
    # PCBs {5,6} of τ1 overlap ECBs of τ2: 2 evictable blocks, twice.
    assert cpro.eviction_count(tau1, tau2) == 2
    assert cpro.rho(tau1, tau2, 3) == 4


def test_bas_persistence_matches_eq15(example):
    taskset, platform, tau1, tau2, tau3 = example
    ctx = _context(taskset, platform, persistence=True)
    assert bas(ctx, tau2, R2) == 26


def test_bao_baseline_matches_eq13(example):
    taskset, platform, tau1, tau2, tau3 = example
    ctx = _context(taskset, platform, persistence=False)
    assert bao(ctx, 1, tau3, R2) == 24


def test_bao_persistence_is_nine(example):
    taskset, platform, tau1, tau2, tau3 = example
    ctx = _context(taskset, platform, persistence=True)
    assert bao(ctx, 1, tau3, R2) == 9


def test_no_blocking_for_lowest_priority_on_core(example):
    taskset, platform, tau1, tau2, tau3 = example
    ctx = _context(taskset, platform, persistence=False)
    # τ2 is the lowest-priority task on core 0, so Eq. (12) has no +1 term.
    assert blocking_accesses(ctx, tau2) == 0
    # τ1 does have a same-core lower-priority task (τ2).
    assert blocking_accesses(ctx, tau1) == 1


def test_rr_total_accesses(example):
    taskset, platform, tau1, tau2, tau3 = example
    baseline = _context(taskset, platform, persistence=False)
    aware = _context(taskset, platform, persistence=True)
    # Eq. (11): BAT = BAS + min(BAO, s * BAS), no +1 for τ2.
    assert total_bus_accesses(baseline, tau2, R2) == 32 + min(24, 32)
    assert total_bus_accesses(aware, tau2, R2) == 26 + min(9, 26)


def test_persistence_never_exceeds_baseline(example):
    taskset, platform, tau1, tau2, tau3 = example
    baseline = _context(taskset, platform, persistence=False)
    aware = _context(taskset, platform, persistence=True)
    for t in range(0, 200, 7):
        assert bas(aware, tau2, t) <= bas(baseline, tau2, t)
        assert bao(aware, 1, tau3, t) <= bao(baseline, 1, tau3, t)
