"""Tests of the lockstep multi-sample WCRT engine.

The engine's one obligation is *bit-identity*: a batch of lanes must
return exactly what the scalar path (``AnalysisConfig(lockstep_kernel=
False)``) returns for the same task sets, one at a time — same verdicts,
same response times, same outer-iteration counts, same exception classes
and messages — with numpy importable and absent.  The broad randomized
equivalences live in ``tests/test_differential.py`` and the
``lockstep-identity`` fuzz oracle; this file pins the engine's edge cases
and counters.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis import lockstep as lockstep_mod
from repro.analysis.config import AnalysisConfig
from repro.analysis.lockstep import LaneOutcome, analyze_taskset_batch
from repro.analysis.wcrt import WarmHint, analyze_taskset
from repro.budget import Budget
from repro.errors import AnalysisAborted, AnalysisError, BudgetExceeded
from repro.experiments.config import default_platform
from repro.generation.taskset_gen import generate_taskset
from repro.model import interference as interference_mod
from repro.model.task import Task, TaskSet
from repro.perf import PerfCounters

SCALAR = AnalysisConfig(lockstep_kernel=False)
LOCKSTEP = AnalysisConfig(lockstep_kernel=True)


def _tasksets(seeds, utilization=0.45, platform=None):
    platform = platform or default_platform()
    return [
        generate_taskset(random.Random(seed), platform, utilization)
        for seed in seeds
    ]


def _scalar_reference(tasksets, platform, config=SCALAR):
    """The sequence of scalar outcomes the batch must reproduce."""
    outcomes = []
    for taskset in tasksets:
        try:
            outcomes.append(
                LaneOutcome(result=analyze_taskset(taskset, platform, config))
            )
        except Exception as error:  # noqa: BLE001 — mirrored comparison
            outcomes.append(LaneOutcome(error=error))
    return outcomes


def _snapshot(result):
    """Object-independent projection of a :class:`WcrtResult`.

    ``Task`` compares by identity, so results over *distinct* (equal)
    generated task sets are compared through priority-keyed maps.
    """
    return (
        result.schedulable,
        result.outer_iterations,
        None if result.failed_task is None else result.failed_task.priority,
        {task.priority: r for task, r in result.response_times.items()},
    )


def _assert_outcomes_match(batch, reference):
    assert len(batch) == len(reference)
    for got, want in zip(batch, reference):
        if want.error is not None:
            assert got.error is not None
            assert type(got.error) is type(want.error)
            assert str(got.error) == str(want.error)
        else:
            assert got.error is None
            assert _snapshot(got.result) == _snapshot(want.result)


class TestBatchMatchesScalar:
    @pytest.mark.parametrize("utilization", [0.2, 0.45, 0.65, 0.85])
    def test_mixed_batch_identical(self, utilization):
        platform = default_platform()
        tasksets = _tasksets(range(6), utilization)
        batch = analyze_taskset_batch(tasksets, platform, LOCKSTEP)
        reference = _scalar_reference(
            _tasksets(range(6), utilization), platform
        )
        _assert_outcomes_match(batch, reference)

    def test_numpy_absent_fallback_identical(self, monkeypatch):
        monkeypatch.setattr(lockstep_mod, "_np", None)
        monkeypatch.setattr(interference_mod, "_ARRAY_KERNEL_WARNED", True)
        platform = default_platform()
        perf = PerfCounters()
        batch = analyze_taskset_batch(
            _tasksets(range(4), 0.55), platform, LOCKSTEP, perf=perf
        )
        reference = _scalar_reference(_tasksets(range(4), 0.55), platform)
        _assert_outcomes_match(batch, reference)
        assert perf.array_kernel_unavailable >= 1

    def test_numpy_absent_warns_once(self, monkeypatch):
        monkeypatch.setattr(lockstep_mod, "_np", None)
        monkeypatch.setattr(interference_mod, "_ARRAY_KERNEL_WARNED", False)
        platform = default_platform()
        with pytest.warns(RuntimeWarning, match="pure-Python fallback"):
            analyze_taskset_batch(_tasksets((0, 1), 0.4), platform, LOCKSTEP)
        # The second batch of the same process must stay silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            analyze_taskset_batch(_tasksets((2, 3), 0.4), platform, LOCKSTEP)

    def test_disabled_kernel_runs_scalar_per_lane(self):
        platform = default_platform()
        perf = PerfCounters()
        batch = analyze_taskset_batch(
            _tasksets((1, 2), 0.4), platform, SCALAR, perf=perf
        )
        reference = _scalar_reference(_tasksets((1, 2), 0.4), platform)
        _assert_outcomes_match(batch, reference)
        assert perf.lockstep_batches == 0
        assert perf.lane_retirements == 0

    def test_warm_hints_stay_invisible(self):
        platform = default_platform()
        config = replace(LOCKSTEP, warm_start=True)
        donors = analyze_taskset_batch(
            _tasksets(range(3), 0.3), platform, config
        )
        hints = [
            WarmHint(
                response_times={
                    task.priority: value
                    for task, value in outcome.result.response_times.items()
                },
                outer_iterations=outcome.result.outer_iterations,
            )
            if outcome.ok and outcome.result.schedulable
            else None
            for outcome in donors
        ]
        hinted = analyze_taskset_batch(
            _tasksets(range(3), 0.3), platform, config, warm_hints=hints
        )
        reference = _scalar_reference(
            _tasksets(range(3), 0.3),
            platform,
            replace(SCALAR, warm_start=True),
        )
        _assert_outcomes_match(hinted, reference)


class TestLaneEdgeCases:
    def test_single_task_lanes(self):
        platform = default_platform()
        tasksets = [
            TaskSet([next(iter(taskset))])
            for taskset in _tasksets(range(4), 0.5)
        ]
        clones = [TaskSet(list(taskset)) for taskset in tasksets]
        batch = analyze_taskset_batch(tasksets, platform, LOCKSTEP)
        reference = _scalar_reference(clones, platform)
        _assert_outcomes_match(batch, reference)

    def test_lane_retired_on_iteration_zero(self):
        # One lane's task overruns its deadline contention-free, so the
        # isolated-WCET precheck retires it before any lockstep step; the
        # healthy co-scheduled lanes must be untouched.
        platform = default_platform()
        doomed = TaskSet(
            [
                Task(
                    name="doomed",
                    pd=500,
                    md=100,
                    md_r=50,
                    period=1_000,
                    deadline=600,
                    priority=1,
                )
            ]
        )
        healthy = _tasksets((5, 6), 0.3)
        batch = analyze_taskset_batch(
            [doomed, *healthy], platform, LOCKSTEP
        )
        assert batch[0].ok
        assert not batch[0].result.schedulable
        assert batch[0].result.failed_task.name == "doomed"
        assert batch[0].result.outer_iterations == 0
        reference = _scalar_reference(
            [TaskSet(list(doomed)), *_tasksets((5, 6), 0.3)], platform
        )
        _assert_outcomes_match(batch, reference)

    def test_batch_of_one_uses_scalar_path(self):
        platform = default_platform()
        perf = PerfCounters()
        (outcome,) = analyze_taskset_batch(
            _tasksets((3,), 0.4), platform, LOCKSTEP, perf=perf
        )
        assert outcome.ok
        assert perf.lockstep_batches == 0
        assert _snapshot(outcome.result) == _snapshot(
            analyze_taskset(_tasksets((3,), 0.4)[0], platform, SCALAR)
        )

    def test_empty_batch(self):
        assert analyze_taskset_batch([], default_platform(), LOCKSTEP) == []

    def test_shape_mismatch_rejected(self):
        platform = default_platform()
        tasksets = _tasksets((1, 2), 0.4)
        with pytest.raises(AnalysisError, match="batch shape mismatch"):
            analyze_taskset_batch(tasksets, platform, LOCKSTEP, budgets=[None])
        with pytest.raises(AnalysisError, match="batch shape mismatch"):
            analyze_taskset_batch(
                tasksets, platform, LOCKSTEP, warm_hints=[None]
            )


class TestBudgetAbortMidLockstep:
    def test_abort_is_per_lane_and_leaves_state_sound(self):
        platform = default_platform()
        # High utilisation => many inner iterations; a one-tick iteration
        # ceiling aborts the budgeted lane mid-lockstep.
        tasksets = _tasksets(range(4), 0.8)
        budgets = [None, Budget(max_iterations=1), None, None]
        perf = PerfCounters()
        batch = analyze_taskset_batch(
            tasksets, platform, LOCKSTEP, perf=perf, budgets=budgets
        )
        aborted = batch[1]
        assert not aborted.ok
        assert isinstance(aborted.error, BudgetExceeded)
        assert isinstance(aborted.error, AnalysisAborted)
        assert aborted.error.partial is not None
        assert not aborted.error.partial.schedulable
        assert perf.budget_aborts == 1
        # Every other lane retires exactly as an unbudgeted scalar run.
        reference = _scalar_reference(_tasksets(range(4), 0.8), platform)
        for index in (0, 2, 3):
            assert batch[index].ok
            assert _snapshot(batch[index].result) == _snapshot(
                reference[index].result
            )
        # The abort left the shared caches and warm-seed stores sound:
        # re-analysing the aborted lane's *same object* without a budget
        # matches a fresh-object cold analysis bit for bit.
        rerun = analyze_taskset(tasksets[1], platform, SCALAR)
        fresh = analyze_taskset(_tasksets(range(4), 0.8)[1], platform, SCALAR)
        assert _snapshot(rerun) == _snapshot(fresh)

    def test_abort_mid_lockstep_keeps_warm_seeds_sound(self):
        platform = default_platform()
        config = replace(LOCKSTEP, warm_start=True)
        tasksets = _tasksets((10, 11, 12), 0.35)
        budgets = [Budget(max_iterations=1), None, None]
        batch = analyze_taskset_batch(
            tasksets, platform, config, budgets=budgets
        )
        assert isinstance(batch[0].error, AnalysisAborted)
        # An aborted lane must not have recorded a replayable seed: the
        # warm replay on the same object still matches a fresh cold run.
        replay = analyze_taskset(tasksets[0], platform, config)
        fresh = analyze_taskset(
            _tasksets((10,), 0.35)[0], platform, replace(config, warm_start=True)
        )
        assert _snapshot(replay) == _snapshot(fresh)


class TestCounters:
    def test_lockstep_counters_accumulate(self):
        platform = default_platform()
        perf = PerfCounters()
        batch = analyze_taskset_batch(
            _tasksets(range(5), 0.5), platform, LOCKSTEP, perf=perf
        )
        assert perf.lockstep_batches == 1
        # Every cold lane retires exactly once.
        assert perf.lane_retirements == sum(
            1 for outcome in batch if outcome.result is not None
        )
        assert perf.analyses == 5
        assert perf.inner_iterations > 0

    def test_lane_counters_attach_to_results(self):
        platform = default_platform()
        batch = analyze_taskset_batch(
            _tasksets((7, 8), 0.4), platform, LOCKSTEP
        )
        for outcome in batch:
            assert outcome.ok
            assert outcome.result.perf is not None
            assert outcome.result.perf.analyses == 1
