"""Recovery-path tests for the fault-tolerant sweep supervisor.

Every path is exercised with *deterministic* fault injection
(:class:`repro.verify.faults.SweepFault` specs carried into the workers):
injected worker crash -> chunk bisection quarantines exactly the poison
seed; injected hang -> pool kill + retry recovers bit-identically;
injected transient exception -> per-sample retry with backoff.
"""

from dataclasses import replace

import pytest

from repro.errors import AnalysisError
from repro.experiments.config import (
    SweepSettings,
    default_platform,
    standard_variants,
)
from repro.experiments.runner import (
    _sample_seed,
    run_curve,
    schedulability_ratios,
)
from repro.experiments.supervisor import SampleFailure, WorkItem, chunked
from repro.verify.faults import (
    SweepFault,
    TransientWorkerFault,
    parse_sweep_fault,
    sweep_fault_kinds,
    trigger_sweep_fault,
)

#: Two utilisation points x 4 samples; retries=1 keeps recovery cycles short.
SETTINGS = SweepSettings(
    samples=4,
    seed=7,
    utilizations=(0.2, 0.4),
    jobs=2,
    retries=1,
    backoff=0.01,
)

VARIANTS = standard_variants(include_perfect=False)[:2]


@pytest.fixture(scope="module")
def clean():
    """Reference outcomes of the unfaulted sweep."""
    return run_curve(default_platform(), VARIANTS, SETTINGS)


class TestFaultSpecs:
    def test_known_kinds(self):
        assert sweep_fault_kinds() == (
            "crash-sample",
            "flaky-sample",
            "hang-sample",
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(AnalysisError, match="unknown sweep fault"):
            SweepFault("segfault-everything")

    def test_parse_defaults_to_origin(self):
        fault = parse_sweep_fault("crash-sample")
        assert (fault.kind, fault.point, fault.sample) == ("crash-sample", 0, 0)

    def test_parse_explicit_target(self):
        fault = parse_sweep_fault("hang-sample:3,17")
        assert (fault.point, fault.sample) == (3, 17)

    def test_parse_rejects_garbage_target(self):
        with pytest.raises(AnalysisError):
            parse_sweep_fault("hang-sample:x,y")
        with pytest.raises(AnalysisError):
            parse_sweep_fault("hang-sample:1")

    def test_flaky_fires_only_on_first_attempt(self):
        fault = SweepFault("flaky-sample", point=1, sample=2)
        with pytest.raises(TransientWorkerFault):
            trigger_sweep_fault(fault, 1, 2, attempt=0)
        trigger_sweep_fault(fault, 1, 2, attempt=1)  # no raise
        trigger_sweep_fault(fault, 0, 0, attempt=0)  # non-matching item

    def test_none_fault_is_noop(self):
        trigger_sweep_fault(None, 0, 0, 0)


class TestChunking:
    def test_chunks_cover_items_in_order(self):
        items = [WorkItem(0, i, 0.5, i) for i in range(10)]
        chunks = chunked(items, jobs=3)
        assert [item for chunk in chunks for item in chunk] == items
        assert all(chunks)

    @pytest.mark.parametrize("samples", [1, 2, 7, 40, 100])
    @pytest.mark.parametrize("jobs", [1, 2, 3, 8])
    def test_guided_sizes_cover_everything_in_order(self, samples, jobs):
        items = [
            WorkItem(point, i, 0.5, point * 1000 + i)
            for point in range(2)
            for i in range(samples)
        ]
        chunks = chunked(items, jobs=jobs)
        assert [item for chunk in chunks for item in chunk] == items
        assert all(chunks)
        # Chunks never span sweep points (prewarm and the lockstep batch
        # rely on one-point chunks).
        for chunk in chunks:
            assert len({item.point for item in chunk}) == 1
        # Within a point the guided sizes never grow head-to-tail.
        for point in range(2):
            sizes = [
                len(chunk) for chunk in chunks if chunk[0].point == point
            ]
            assert sizes == sorted(sizes, reverse=True)


class TestResidentWorkers:
    def test_worker_counters_merge_across_processes(self):
        # The lockstep/residency counters bump inside spawn workers and
        # must surface in the parent's global aggregate (the transport is
        # the pickled PerfCounters of each chunk result).
        from repro.perf import global_counters, reset_global_counters

        reset_global_counters()
        # 16 samples per point: the guided chunk sizes start at 4, so the
        # workers' lockstep batches hold several lanes each.
        run_curve(default_platform(), VARIANTS, replace(SETTINGS, samples=16))
        counters = global_counters()
        assert counters.lockstep_batches > 0
        assert counters.lane_retirements > 0
        assert counters.resident_table_misses > 0

    def test_forced_stealing_is_counted_and_invisible(self, clean, monkeypatch):
        # One whole point per chunk with three workers: more idle slots
        # than queued chunks from the first dispatch on, so the tail
        # work-stealing split must fire — and the outcomes must still be
        # bit-identical to the unfaulted reference sweep.
        from repro.experiments import supervisor as supervisor_mod
        from repro.perf import global_counters, reset_global_counters

        def one_chunk_per_point(items, jobs):
            chunks = []
            for point in sorted({item.point for item in items}):
                chunks.append(
                    tuple(item for item in items if item.point == point)
                )
            return chunks

        monkeypatch.setattr(supervisor_mod, "chunked", one_chunk_per_point)
        reset_global_counters()
        stolen = run_curve(
            default_platform(), VARIANTS, replace(SETTINGS, jobs=3)
        )
        assert global_counters().chunks_stolen >= 1
        assert not stolen.failures
        for utilization in SETTINGS.utilizations:
            assert stolen[utilization] == clean[utilization]


class TestCrashRecovery:
    def test_poison_sample_is_quarantined_exactly(self, clean):
        crashed = run_curve(
            default_platform(),
            VARIANTS,
            SETTINGS,
            fault=SweepFault("crash-sample", point=1, sample=2),
        )
        assert [(f.point, f.sample) for f in crashed.failures] == [(1, 2)]
        failure = crashed.failures[0]
        assert failure.kind == "crash"
        assert failure.exception == "WorkerCrashError"
        # The quarantine record carries the complete reproducer seed.
        assert failure.seed == _sample_seed(SETTINGS.seed, 1, 2)
        assert failure.attempts == SETTINGS.retries + 1

    def test_healthy_samples_survive_bit_identically(self, clean):
        crashed = run_curve(
            default_platform(),
            VARIANTS,
            SETTINGS,
            fault=SweepFault("crash-sample", point=1, sample=2),
        )
        assert crashed[0.2] == clean[0.2]
        assert len(crashed[0.4]) == SETTINGS.samples - 1
        assert crashed.healthy == clean.healthy - 1
        assert crashed.coverage == pytest.approx(7 / 8)

    def test_ratios_degrade_gracefully(self):
        crashed = run_curve(
            default_platform(),
            VARIANTS,
            SETTINGS,
            fault=SweepFault("crash-sample", point=0, sample=0),
        )
        ratios = schedulability_ratios(crashed, VARIANTS)
        for series in ratios.values():
            assert len(series) == 2
            assert all(0.0 <= value <= 1.0 for value in series)


class TestHangRecovery:
    def test_timeout_then_retry_recovers_fully(self, clean):
        hung = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, timeout=1.5),
            fault=SweepFault("hang-sample", point=0, sample=1),
        )
        assert hung.failures == []
        assert hung.coverage == 1.0
        assert hung == dict(clean)


class TestTransientRecovery:
    def test_flaky_sample_retries_and_succeeds(self, clean):
        flaky = run_curve(
            default_platform(),
            VARIANTS,
            SETTINGS,
            fault=SweepFault("flaky-sample", point=0, sample=0),
        )
        assert flaky.failures == []
        assert flaky == dict(clean)

    def test_flaky_sample_quarantined_without_retry_budget(self, clean):
        flaky = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, retries=0),
            fault=SweepFault("flaky-sample", point=0, sample=0),
        )
        assert [(f.point, f.sample) for f in flaky.failures] == [(0, 0)]
        failure = flaky.failures[0]
        assert failure.kind == "exception"
        assert failure.exception == "TransientWorkerFault"
        assert failure.traceback_digest  # correlatable across occurrences
        # Everything else is untouched.
        assert flaky[0.4] == clean[0.4]

    def test_inline_path_recovers_flaky_too(self, clean):
        inline = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, jobs=1),
            fault=SweepFault("flaky-sample", point=1, sample=3),
        )
        assert inline.failures == []
        assert inline == dict(clean)

    def test_inline_path_quarantines_exhausted_flaky(self, clean):
        inline = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, jobs=1, retries=0),
            fault=SweepFault("flaky-sample", point=0, sample=2),
        )
        assert [(f.point, f.sample) for f in inline.failures] == [(0, 2)]
        assert inline[0.4] == clean[0.4]


class TestBudgetQuarantine:
    """The in-process budget layer under the supervisor (layer 0)."""

    def test_exhausted_budget_quarantines_without_retry(self, clean):
        # A budget this small aborts every sample at its first wall-clock
        # check, so every item lands in quarantine deterministically.
        budgeted = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, jobs=1, sample_budget=1e-6),
        )
        total = len(SETTINGS.utilizations) * SETTINGS.samples
        assert len(budgeted.failures) == total
        failure = budgeted.failures[0]
        assert failure.kind == "budget"
        assert failure.exception == "BudgetExceeded"
        # Deterministic aborts are never retried.
        assert failure.attempts == 1
        assert budgeted.coverage == 0.0

    def test_worker_path_quarantines_budget_aborts_too(self):
        budgeted = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, sample_budget=1e-6),
        )
        assert budgeted.failures
        assert {f.kind for f in budgeted.failures} == {"budget"}
        assert all(f.attempts == 1 for f in budgeted.failures)

    def test_generous_budget_is_invisible(self, clean):
        budgeted = run_curve(
            default_platform(),
            VARIANTS,
            replace(SETTINGS, sample_budget=300.0),
        )
        assert budgeted.failures == []
        assert budgeted == dict(clean)

    def test_settings_reject_bad_budget(self):
        with pytest.raises(AnalysisError):
            replace(SETTINGS, sample_budget=0.0)
        with pytest.raises(AnalysisError):
            replace(SETTINGS, sample_budget=float("inf"))


class TestSampleFailureRecords:
    def test_round_trip_through_record(self):
        failure = SampleFailure(
            point=3,
            sample=9,
            utilization=0.45,
            seed=12345,
            kind="crash",
            exception="WorkerCrashError",
            message="worker died",
            traceback_digest="abc123",
            attempts=3,
        )
        assert SampleFailure.from_record(failure.to_record()) == failure

    def test_describe_names_the_reproducer_seed(self):
        failure = SampleFailure(
            point=0,
            sample=1,
            utilization=0.2,
            seed=777,
            kind="hang",
            exception="ChunkTimeoutError",
            message="",
            traceback_digest="",
            attempts=2,
        )
        text = failure.describe()
        assert "777" in text and "hang" in text
