"""Unit tests for the WCRT decomposition."""

import random

import pytest

from repro.analysis import (
    AnalysisConfig,
    BASELINE,
    PERSISTENCE_AWARE,
    analyze_taskset,
    decompose,
    decompose_taskset,
)
from repro.businterference.context import AnalysisContext
from repro.generation import generate_taskset
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet

ALL_POLICIES = (BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA, BusPolicy.PERFECT)

TDMA_SAFE = AnalysisConfig(persistence=True, tdma_slot_alignment=True)


def make_task(name, priority, core, pd=50, md=5, period=1000):
    return Task(
        name=name, pd=pd, md=md, period=period, deadline=period,
        priority=priority, core=core,
    )


class TestSingleTask:
    def test_isolated_task_decomposition(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)
        task = make_task("solo", 1, 0, pd=50, md=5)
        taskset = TaskSet([task])
        breakdowns = decompose_taskset(taskset, platform)
        (breakdown,) = breakdowns
        assert breakdown.processing == 50
        assert breakdown.own_demand == 50
        assert breakdown.core_interference == 0
        assert breakdown.same_core_memory == 0
        assert breakdown.remote_memory == 0
        assert breakdown.arbitration == 0
        assert breakdown.total == breakdown.response_time == 100


@pytest.mark.parametrize("policy", ALL_POLICIES, ids=lambda p: p.value)
class TestGeneratedSets:
    @pytest.fixture()
    def system(self, policy):
        platform = Platform(bus_policy=policy)
        taskset = generate_taskset(random.Random(11), platform, 0.2)
        return platform, taskset

    def test_components_sum_to_recurrence(self, policy, system):
        platform, taskset = system
        result = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)
        assert result.schedulable
        for breakdown in decompose_taskset(
            taskset, platform, PERSISTENCE_AWARE, result
        ):
            assert breakdown.total <= breakdown.response_time
            assert all(value >= 0 for value in (
                breakdown.processing,
                breakdown.core_interference,
                breakdown.own_demand,
                breakdown.same_core_memory,
                breakdown.same_core_crpd,
                breakdown.remote_memory,
                breakdown.remote_crpd,
                breakdown.arbitration,
            ))

    def test_shares_sum_close_to_one_for_exact_points(self, policy, system):
        platform, taskset = system
        result = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)
        for breakdown in decompose_taskset(
            taskset, platform, PERSISTENCE_AWARE, result
        ):
            if breakdown.total == breakdown.response_time:
                assert sum(breakdown.shares().values()) == pytest.approx(1.0)

    def test_persistence_reduces_memory_components(self, policy, system):
        platform, taskset = system
        aware_result = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)
        base_result = analyze_taskset(taskset, platform, BASELINE)
        if not (aware_result.schedulable and base_result.schedulable):
            pytest.skip("need both analyses schedulable")
        aware = {
            b.task: b
            for b in decompose_taskset(taskset, platform, PERSISTENCE_AWARE, aware_result)
        }
        base = {
            b.task: b
            for b in decompose_taskset(taskset, platform, BASELINE, base_result)
        }
        for task in taskset:
            # Identical windows are not guaranteed, but the persistence-aware
            # response time never exceeds the baseline's.
            assert aware[task].response_time <= base[task].response_time


class TestRenderAndErrors:
    def test_render_mentions_all_components(self):
        platform = Platform(num_cores=1, d_mem=10)
        taskset = TaskSet([make_task("t", 1, 0)])
        (breakdown,) = decompose_taskset(taskset, platform)
        text = breakdown.render()
        for label in ("processing", "own_demand", "arbitration"):
            assert label in text

    def test_decompose_with_explicit_context(self):
        platform = Platform(num_cores=2, d_mem=10)
        t1 = make_task("a", 1, 0)
        t2 = make_task("b", 2, 1)
        taskset = TaskSet([t1, t2])
        ctx = AnalysisContext(taskset=taskset, platform=platform)
        breakdown = decompose(ctx, t1, 200)
        assert breakdown.response_time == 200
        assert breakdown.processing == 50

    def test_unschedulable_sets_still_decompose(self):
        platform = Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.PERFECT)
        t1 = make_task("a", 1, 0, pd=600, period=1000)
        t2 = make_task("b", 2, 0, pd=600, period=1000)
        taskset = TaskSet([t1, t2])
        breakdowns = decompose_taskset(taskset, platform)
        assert len(breakdowns) == 2  # failing task included with estimate
