"""Unit tests for the static cache analysis (extraction) machinery."""

import pytest

from repro.cacheanalysis.extraction import (
    evicting_sets,
    extract_parameters,
    extract_parameters_cached,
    persistent_blocks,
)
from repro.cacheanalysis.simulator import simulate_trace
from repro.cacheanalysis.state import DirectMappedCache
from repro.model.platform import CacheGeometry
from repro.program.cfg import Alt, Block, Loop, Program, Seq

GEO = CacheGeometry(num_sets=16, block_size=32)


def line_block(line, n_lines=1, uncached=0):
    return Block(start=line * 32, n_instructions=8 * n_lines, uncached=uncached)


class TestDirectMappedCache:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(GEO)
        assert not cache.access(5)
        assert cache.access(5)

    def test_conflict_eviction(self):
        cache = DirectMappedCache(GEO)
        cache.access(5)
        cache.access(5 + 16)  # same set
        assert not cache.lookup(5)
        assert cache.lookup(21)

    def test_lookup_does_not_mutate(self):
        cache = DirectMappedCache(GEO)
        assert not cache.lookup(3)
        assert not cache.lookup(3)

    def test_evict_sets(self):
        cache = DirectMappedCache(GEO)
        cache.access(1)
        cache.access(2)
        assert cache.evict_sets([1, 2, 3]) == 2
        assert not cache.lookup(1)

    def test_with_resident_blocks(self):
        cache = DirectMappedCache.with_resident_blocks(GEO, [4, 20])
        # 4 and 20 conflict on set 4: the later one wins.
        assert cache.lookup(20)
        assert not cache.lookup(4)

    def test_copy_is_independent(self):
        cache = DirectMappedCache(GEO)
        cache.access(1)
        clone = cache.copy()
        clone.access(17)  # evicts 1 in the clone only
        assert cache.lookup(1)
        assert not clone.lookup(1)

    def test_key_is_order_insensitive(self):
        a = DirectMappedCache(GEO)
        a.access(1)
        a.access(2)
        b = DirectMappedCache(GEO)
        b.access(2)
        b.access(1)
        assert a.key() == b.key()

    def test_intersect(self):
        a = DirectMappedCache.with_resident_blocks(GEO, [1, 2, 3])
        b = DirectMappedCache.with_resident_blocks(GEO, [1, 2, 19])
        joined = a.intersect(b)
        assert joined.lookup(1) and joined.lookup(2)
        assert not joined.lookup(3) and not joined.lookup(19)

    def test_equality(self):
        a = DirectMappedCache.with_resident_blocks(GEO, [1])
        b = DirectMappedCache.with_resident_blocks(GEO, [1])
        assert a == b
        b.access(2)
        assert a != b


class TestStructuralSets:
    def test_ecbs_are_touched_sets(self):
        program = Program(name="p", root=Seq(line_block(0), line_block(5)))
        assert evicting_sets(program, GEO) == frozenset({0, 5})

    def test_ecbs_wrap_modulo_cache(self):
        program = Program(name="p", root=Seq(line_block(1), line_block(17)))
        assert evicting_sets(program, GEO) == frozenset({1})

    def test_pcbs_unique_mapping_only(self):
        program = Program(
            name="p", root=Seq(line_block(1), line_block(2), line_block(17))
        )
        # Lines 1 and 17 conflict on set 1; line 2 is alone on set 2.
        assert persistent_blocks(program, GEO) == frozenset({2})

    def test_pcbs_count_any_path(self):
        program = Program(name="p", root=Alt(line_block(1), line_block(17)))
        # Even though the two conflicting lines are on different branches,
        # neither is persistent (a job may take either path over time).
        assert persistent_blocks(program, GEO) == frozenset()


class TestExtractionStraightLine:
    def test_single_pass_counts(self):
        program = Program(name="p", root=line_block(0, n_lines=4))
        params = extract_parameters(program, GEO)
        assert params.md == 4
        assert params.md_r == 0  # all four lines are persistent
        assert params.pd == 32
        assert len(params.ecbs) == 4
        assert params.pcbs == params.ecbs
        assert params.ucbs == frozenset()  # nothing is re-used

    def test_uncached_traffic_in_both_demands(self):
        program = Program(name="p", root=line_block(0, uncached=7))
        params = extract_parameters(program, GEO)
        assert params.md == 1 + 7
        assert params.md_r == 7

    def test_loop_makes_blocks_useful(self):
        program = Program(name="p", root=Loop(line_block(0, n_lines=3), bound=5))
        params = extract_parameters(program, GEO)
        assert params.md == 3  # persistent: only cold misses
        assert params.ucbs == params.ecbs

    def test_conflicting_loop_generates_repeated_misses(self):
        body = Seq(line_block(1), line_block(17))  # same set, alternating
        program = Program(name="p", root=Loop(body, bound=10))
        params = extract_parameters(program, GEO)
        assert params.md == 20
        assert params.md_r == 20  # nothing persistent
        assert params.pcbs == frozenset()

    def test_matches_exact_trace_simulation(self):
        # For a branch-free program the structural extraction must equal a
        # full unrolled trace simulation.
        body = Seq(line_block(0, n_lines=2), line_block(16), line_block(3))
        program = Program(name="p", root=Seq(line_block(5), Loop(body, bound=7)))
        params = extract_parameters(program, GEO)
        trace = [5] + [0, 1, 16, 3] * 7
        result = simulate_trace(trace, GEO)
        assert params.md == result.misses
        assert params.ucbs == result.hit_sets


class TestExtractionBranches:
    def test_alt_takes_worst_demand(self):
        program = Program(
            name="p",
            root=Alt(line_block(0, n_lines=5), line_block(8, n_lines=2)),
        )
        params = extract_parameters(program, GEO)
        assert params.md == 5

    def test_alt_union_for_ucbs(self):
        heavy = Loop(line_block(0, n_lines=4), bound=3)
        light = Loop(line_block(8, n_lines=1), bound=3)
        program = Program(name="p", root=Alt(heavy, light))
        params = extract_parameters(program, GEO)
        # Useful sets from both branches are unioned.
        assert frozenset({0, 1, 2, 3, 8}) == params.ucbs

    def test_alt_join_is_sound_upper_bound(self):
        # After the branch the analysis must not assume branch-specific
        # content: a block loaded in only one branch misses again.
        program = Program(
            name="p",
            root=Seq(
                Alt(line_block(0), line_block(1)),
                line_block(0),
                line_block(1),
            ),
        )
        params = extract_parameters(program, GEO)
        # Worst concrete path: take branch line 1 -> misses: 1, then 0
        # misses, 1 hits = 2 total.  The analysis must report >= 2.
        assert params.md >= 2

    def test_md_r_never_exceeds_md(self):
        program = Program(
            name="p",
            root=Seq(
                Alt(line_block(0, n_lines=3), line_block(16, n_lines=3)),
                Loop(line_block(4, n_lines=2), bound=4),
            ),
        )
        params = extract_parameters(program, GEO)
        assert params.md_r <= params.md


class TestLoopAcceleration:
    def test_large_bounds_are_fast_and_exact(self):
        body = Seq(line_block(1), line_block(17), line_block(2))
        program = Program(name="p", root=Loop(body, bound=100_000))
        params = extract_parameters(program, GEO)
        # Per iteration: lines 1 and 17 always miss (conflict), line 2
        # misses once.
        assert params.md == 2 * 100_000 + 1

    def test_acceleration_matches_small_unrolled_loop(self):
        body = Seq(line_block(1), line_block(17), line_block(2))
        for bound in (1, 2, 3, 5, 9):
            program = Program(name="p", root=Loop(body, bound=bound))
            params = extract_parameters(program, GEO)
            trace = [1, 17, 2] * bound
            assert params.md == simulate_trace(trace, GEO).misses

    def test_nested_loops(self):
        inner = Loop(line_block(0, n_lines=2), bound=3)
        outer = Loop(Seq(inner, line_block(5)), bound=50)
        program = Program(name="p", root=outer)
        params = extract_parameters(program, GEO)
        # Everything is uniquely mapped: 3 cold misses only.
        assert params.md == 3


class TestCachedExtraction:
    def test_cached_matches_direct(self):
        program = Program(name="p", root=Loop(line_block(0, n_lines=3), bound=4))
        assert extract_parameters_cached(program, GEO) == extract_parameters(
            program, GEO
        )

    def test_as_task_kwargs_round_trip(self):
        from repro.model.task import Task

        program = Program(name="p", root=Loop(line_block(0, n_lines=3), bound=4))
        params = extract_parameters(program, GEO)
        task = Task(
            name="p", period=10_000, deadline=10_000, priority=1,
            **params.as_task_kwargs(),
        )
        assert task.md == params.md
        assert task.pcbs == params.pcbs
