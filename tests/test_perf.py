"""Tests of the :mod:`repro.perf` counters and their kernel integration."""

import random
from dataclasses import replace

from repro.analysis.config import PERSISTENCE_AWARE
from repro.analysis.wcrt import analyze_taskset
from repro.experiments.config import default_platform
from repro.generation.taskset_gen import generate_taskset
from repro.perf import (
    PerfCounters,
    global_counters,
    merge_global,
    reset_global_counters,
)


def _taskset(seed=1, utilization=0.4):
    platform = default_platform()
    return generate_taskset(random.Random(seed), platform, utilization), platform


class TestPerfCounters:
    def test_fresh_counters_are_zero(self):
        counters = PerfCounters()
        assert counters.analyses == 0
        assert counters.memo_hits == 0
        assert counters.memo_misses == 0
        assert counters.hit_ratio == 0.0
        assert counters.phase_seconds == {}

    def test_merge_accumulates(self):
        a = PerfCounters(analyses=1, bao_hits=3, bao_misses=2)
        a.phase_seconds["analysis"] = 0.5
        b = PerfCounters(analyses=2, bao_hits=1, inner_iterations=7)
        b.phase_seconds["analysis"] = 0.25
        b.phase_seconds["generation"] = 0.1
        a.merge(b)
        assert a.analyses == 3
        assert a.bao_hits == 4
        assert a.bao_misses == 2
        assert a.inner_iterations == 7
        assert a.phase_seconds["analysis"] == 0.75
        assert a.phase_seconds["generation"] == 0.1

    def test_merge_accumulates_lockstep_and_residency_counters(self):
        a = PerfCounters(
            lockstep_batches=1,
            lane_retirements=4,
            resident_table_hits=2,
        )
        b = PerfCounters(
            lockstep_batches=2,
            lane_retirements=3,
            resident_table_hits=5,
            resident_table_misses=1,
            chunks_stolen=2,
            array_kernel_unavailable=1,
        )
        a.merge(b)
        assert a.lockstep_batches == 3
        assert a.lane_retirements == 7
        assert a.resident_table_hits == 7
        assert a.resident_table_misses == 1
        assert a.chunks_stolen == 2
        assert a.array_kernel_unavailable == 1

    def test_new_counters_survive_the_worker_transport(self):
        # Worker processes return their counters by pickling (see
        # repro.experiments.supervisor.run_chunk); the merge on the parent
        # side must see every lockstep/residency field intact.
        import pickle

        counters = PerfCounters(
            lockstep_batches=4,
            lane_retirements=9,
            resident_table_hits=3,
            resident_table_misses=2,
            chunks_stolen=1,
            array_kernel_unavailable=6,
        )
        shipped = pickle.loads(pickle.dumps(counters))
        aggregate = PerfCounters(lockstep_batches=1)
        aggregate.merge(shipped)
        assert aggregate.lockstep_batches == 5
        assert aggregate.lane_retirements == 9
        assert aggregate.resident_table_hits == 3
        assert aggregate.resident_table_misses == 2
        assert aggregate.chunks_stolen == 1
        assert aggregate.array_kernel_unavailable == 6

    def test_reset_zeroes_everything(self):
        counters = PerfCounters(analyses=5, bao_hits=2, outer_iterations=9)
        counters.phase_seconds["analysis"] = 1.0
        counters.reset()
        assert counters == PerfCounters()

    def test_phase_records_elapsed_time(self):
        counters = PerfCounters()
        with counters.phase("busy"):
            pass
        with counters.phase("busy"):
            pass
        assert counters.phase_seconds["busy"] >= 0.0
        assert set(counters.phase_seconds) == {"busy"}

    def test_render_mentions_all_sections(self):
        counters = PerfCounters(analyses=1, bao_hits=10, bao_misses=30)
        counters.phase_seconds["analysis"] = 0.125
        text = counters.render()
        assert "analyses" in text
        assert "bao" in text and "crpd-window" in text
        assert "25.0%" in text  # 10 hits / 40 lookups
        assert "analysis" in text


class TestKernelIntegration:
    def test_converged_analysis_reports_memo_hits(self):
        taskset, platform = _taskset()
        # The fused array kernel bypasses the per-term memo caches, so pin
        # the configuration where the memo subsystem is active.
        config = replace(PERSISTENCE_AWARE, array_kernel=False)
        result = analyze_taskset(taskset, platform, config)
        perf = result.perf
        assert perf is not None
        assert perf.analyses == 1
        assert perf.outer_iterations == result.outer_iterations
        assert perf.inner_iterations > 0
        # The outer loop replays converged windows, so the epoch-keyed
        # caches must see some reuse.
        assert perf.memo_hits > 0
        assert perf.phase_seconds.get("analysis", 0.0) > 0.0

    def test_disabled_memoization_reports_zero_hits(self):
        taskset, platform = _taskset()
        reference = replace(PERSISTENCE_AWARE, memoization=False)
        perf = analyze_taskset(taskset, platform, reference).perf
        assert perf.memo_hits == 0
        assert perf.memo_misses == 0
        assert perf.inner_iterations > 0

    def test_counters_reset_between_analyses(self):
        taskset, platform = _taskset()
        first = analyze_taskset(taskset, platform, PERSISTENCE_AWARE).perf
        second = analyze_taskset(taskset, platform, PERSISTENCE_AWARE).perf
        # Each analysis collects a fresh counter set, not a running total.
        assert second.analyses == 1
        assert second is not first

    def test_caller_aggregate_accumulates_across_analyses(self):
        taskset, platform = _taskset()
        aggregate = PerfCounters()
        analyze_taskset(taskset, platform, PERSISTENCE_AWARE, perf=aggregate)
        analyze_taskset(taskset, platform, PERSISTENCE_AWARE, perf=aggregate)
        assert aggregate.analyses == 2
        assert aggregate.inner_iterations > 0


class TestGlobalCounters:
    def test_merge_global_and_reset(self):
        reset_global_counters()
        merge_global(PerfCounters(analyses=4, bao_hits=1))
        merge_global(None)  # no-op
        assert global_counters().analyses == 4
        assert global_counters().bao_hits == 1
        reset_global_counters()
        assert global_counters().analyses == 0
