"""Unit tests for the CRPD bounds (Eq. 2 and ablation variants)."""

import pytest

from repro.crpd.approaches import (
    CrpdApproach,
    CrpdCalculator,
    crpd_ecb_only,
    crpd_ecb_union,
    crpd_ucb_only,
)
from repro.model.task import Task, TaskSet


def make_task(name, priority, core=0, ecbs=(), ucbs=(), pcbs=()):
    return Task(
        name=name,
        pd=10,
        md=5,
        period=1000,
        deadline=1000,
        priority=priority,
        core=core,
        ecbs=frozenset(ecbs),
        ucbs=frozenset(ucbs),
        pcbs=frozenset(pcbs),
    )


@pytest.fixture()
def three_tasks():
    """High (t1), middle (t2), low (t3) on core 0."""
    t1 = make_task("t1", 1, ecbs={1, 2, 3, 4}, ucbs={1, 2})
    t2 = make_task("t2", 2, ecbs={3, 4, 5, 6}, ucbs={3, 4, 5})
    t3 = make_task("t3", 3, ecbs={5, 6, 7, 8}, ucbs={5, 6, 7, 8})
    return TaskSet([t1, t2, t3]), t1, t2, t3


class TestEcbUnion:
    def test_affected_task_intersection(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        # Preemption of t3's window by t1: affected = {t2, t3}.
        # ECBs of hep(t1) = {1,2,3,4}.
        # |UCB_2 ∩ {1..4}| = |{3,4}| = 2; |UCB_3 ∩ {1..4}| = 0 -> max = 2.
        assert crpd_ecb_union(taskset, t3, t1) == 2

    def test_union_includes_preempting_task_level(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        # Preemption by t2: evicting union = ECB_1 ∪ ECB_2 = {1..6}.
        # affected = aff(3, 2) = {t3}: |UCB_3 ∩ {1..6}| = |{5,6}| = 2.
        assert crpd_ecb_union(taskset, t3, t2) == 2

    def test_no_affected_tasks_gives_zero(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        # aff(1, 1) is empty: the highest-priority task is never preempted.
        assert crpd_ecb_union(taskset, t1, t1) == 0

    def test_other_core_tasks_ignored(self):
        t1 = make_task("t1", 1, core=0, ecbs={1, 2})
        t2 = make_task("t2", 2, core=1, ecbs={1, 2}, ucbs={1, 2})
        t3 = make_task("t3", 3, core=0, ecbs={1, 2}, ucbs={1, 2})
        taskset = TaskSet([t1, t2, t3])
        # t2 lives on core 1, so only t3 is affected on core 0.
        assert crpd_ecb_union(taskset, t3, t1) == 2

    def test_matches_paper_example(self):
        t1 = make_task("tau1", 1, ecbs={5, 6, 7, 8, 9, 10}, ucbs={5, 6, 7, 8, 10})
        t2 = make_task("tau2", 2, ecbs={1, 2, 3, 4, 5, 6}, ucbs={5, 6})
        taskset = TaskSet([t1, t2])
        assert crpd_ecb_union(taskset, t2, t1) == 2


class TestCoarserBounds:
    def test_ucb_only_ignores_evictions(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        # max |UCB_g| over affected {t2, t3} = |UCB_3| = 4.
        assert crpd_ucb_only(taskset, t3, t1) == 4

    def test_ecb_only_counts_preempter_footprint(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        assert crpd_ecb_only(taskset, t3, t1) == len(t1.ecbs)

    def test_coarse_bounds_dominate_ecb_union(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        for task_i in (t2, t3):
            for task_j in taskset.hp(task_i):
                union = crpd_ecb_union(taskset, task_i, task_j)
                assert crpd_ucb_only(taskset, task_i, task_j) >= union
                assert crpd_ecb_only(taskset, task_i, task_j) >= union

    def test_empty_aff_zero_for_all_variants(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        assert crpd_ucb_only(taskset, t1, t1) == 0
        assert crpd_ecb_only(taskset, t1, t1) == 0


class TestCalculator:
    def test_none_approach_returns_zero(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        calc = CrpdCalculator(taskset, CrpdApproach.NONE)
        assert calc.gamma(t3, t1) == 0

    def test_caches_results(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        calc = CrpdCalculator(taskset)
        first = calc.gamma(t3, t1)
        assert calc.gamma(t3, t1) == first
        assert len(calc._cache) == 1

    def test_approach_property(self, three_tasks):
        taskset, _, _, _ = three_tasks
        assert CrpdCalculator(taskset).approach is CrpdApproach.ECB_UNION

    def test_matches_direct_function(self, three_tasks):
        taskset, t1, t2, t3 = three_tasks
        calc = CrpdCalculator(taskset, CrpdApproach.ECB_UNION)
        for i in (t2, t3):
            for j in taskset.hp(i):
                assert calc.gamma(i, j) == crpd_ecb_union(taskset, i, j)
