"""Unit tests for the platform model."""

import pytest

from repro.errors import ModelError
from repro.model.platform import (
    BusPolicy,
    CacheGeometry,
    CYCLES_PER_US,
    Platform,
    cycles_to_microseconds,
    microseconds_to_cycles,
)


class TestUnits:
    def test_default_memory_latency_is_five_microseconds(self):
        assert Platform().d_mem == microseconds_to_cycles(5)

    def test_round_trip_conversion(self):
        for us in (1, 2, 5, 10, 100):
            assert cycles_to_microseconds(microseconds_to_cycles(us)) == us

    def test_cycles_per_us_consistent_with_processor_speed(self):
        assert microseconds_to_cycles(1) == CYCLES_PER_US


class TestCacheGeometry:
    def test_defaults_match_paper(self):
        geometry = CacheGeometry()
        assert geometry.num_sets == 256
        assert geometry.block_size == 32
        assert geometry.capacity_bytes == 8192

    def test_set_mapping_is_modulo(self):
        geometry = CacheGeometry(num_sets=16, block_size=32)
        assert geometry.set_of_block(0) == 0
        assert geometry.set_of_block(16) == 0
        assert geometry.set_of_block(17) == 1

    def test_block_of_address(self):
        geometry = CacheGeometry(num_sets=16, block_size=32)
        assert geometry.block_of_address(0) == 0
        assert geometry.block_of_address(31) == 0
        assert geometry.block_of_address(32) == 1

    def test_set_of_address_composes(self):
        geometry = CacheGeometry(num_sets=8, block_size=32)
        assert geometry.set_of_address(8 * 32 + 5) == 0

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ModelError):
            CacheGeometry(num_sets=100)

    def test_rejects_non_power_of_two_block_size(self):
        with pytest.raises(ModelError):
            CacheGeometry(block_size=24)

    def test_rejects_non_positive_sets(self):
        with pytest.raises(ModelError):
            CacheGeometry(num_sets=0)

    def test_rejects_negative_address(self):
        with pytest.raises(ModelError):
            CacheGeometry().block_of_address(-1)

    def test_rejects_negative_block(self):
        with pytest.raises(ModelError):
            CacheGeometry().set_of_block(-4)

    def test_with_num_sets(self):
        geometry = CacheGeometry().with_num_sets(64)
        assert geometry.num_sets == 64
        assert geometry.block_size == 32


class TestPlatform:
    def test_defaults_match_paper(self):
        platform = Platform()
        assert platform.num_cores == 4
        assert platform.slot_size == 2
        assert platform.bus_policy is BusPolicy.FP

    def test_tdma_cycle_length(self):
        platform = Platform(num_cores=4, slot_size=2)
        assert platform.tdma_cycle_slots == 8

    def test_cores_iterable(self):
        assert list(Platform(num_cores=3).cores) == [0, 1, 2]

    def test_with_helpers_produce_modified_copies(self):
        base = Platform()
        assert base.with_bus_policy(BusPolicy.RR).bus_policy is BusPolicy.RR
        assert base.with_d_mem(42).d_mem == 42
        assert base.with_num_cores(8).num_cores == 8
        assert base.with_slot_size(3).slot_size == 3
        assert base.with_cache(CacheGeometry(num_sets=64)).cache.num_sets == 64
        # The original is untouched (frozen dataclass semantics).
        assert base.num_cores == 4
        assert base.bus_policy is BusPolicy.FP

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            Platform(num_cores=0)
        with pytest.raises(ModelError):
            Platform(d_mem=0)
        with pytest.raises(ModelError):
            Platform(slot_size=0)
        with pytest.raises(ModelError):
            Platform(bus_policy="fp")


class TestBusPolicy:
    def test_work_conserving_classification(self):
        assert BusPolicy.FP.is_work_conserving
        assert BusPolicy.RR.is_work_conserving
        assert BusPolicy.PERFECT.is_work_conserving
        assert not BusPolicy.TDMA.is_work_conserving
