"""Calibration tests: the synthetic benchmark models vs the paper's Table I."""

import pytest

from repro.cacheanalysis.extraction import extract_parameters
from repro.data.benchmarks import benchmark_spec, benchmark_table
from repro.errors import ProgramError
from repro.program.malardalen import (
    ALL_MODELS,
    benchmark_names,
    benchmark_program,
    build_benchmark,
    published_names,
    reference_geometry,
)

#: Published Table I footprint targets: name -> (|ECB|, |PCB|, |UCB|, PD).
TABLE1_FOOTPRINTS = {
    "lcdnum": (20, 20, 20, 984),
    "bsort100": (20, 20, 18, 710289),
    "ludcmp": (98, 98, 98, 27036),
    "fdct": (106, 22, 58, 6550),
    "nsichneu": (256, 0, 256, 22009),
    "statemate": (256, 36, 256, 10586),
}


@pytest.fixture(scope="module")
def extractions():
    geometry = reference_geometry()
    return {
        program.name: extract_parameters(program, geometry)
        for program in ALL_MODELS
    }


class TestSuite:
    def test_twenty_five_benchmarks(self):
        assert len(benchmark_names()) == 25

    def test_published_subset(self):
        assert set(published_names()) == set(TABLE1_FOOTPRINTS)

    def test_lookup_by_name(self):
        assert benchmark_program("fdct").name == "fdct"

    def test_unknown_name_raises(self):
        with pytest.raises(ProgramError):
            benchmark_program("doom")

    def test_names_are_unique(self):
        names = benchmark_names()
        assert len(set(names)) == len(names)


class TestTable1Calibration:
    @pytest.mark.parametrize("name", sorted(TABLE1_FOOTPRINTS))
    def test_footprint_sizes_match_published(self, extractions, name):
        n_ecb, n_pcb, n_ucb, pd = TABLE1_FOOTPRINTS[name]
        params = extractions[name]
        assert len(params.ecbs) == n_ecb
        assert len(params.pcbs) == n_pcb
        assert len(params.ucbs) == n_ucb

    @pytest.mark.parametrize("name", sorted(TABLE1_FOOTPRINTS))
    def test_pd_matches_published(self, extractions, name):
        assert extractions[name].pd == TABLE1_FOOTPRINTS[name][3]

    @pytest.mark.parametrize("name", sorted(TABLE1_FOOTPRINTS))
    def test_md_close_to_dataset(self, extractions, name):
        """Model MD within 5% of the canonical (converted) MD count."""
        dataset = benchmark_spec(name)
        model = extractions[name]
        assert abs(model.md - dataset.md) <= max(2, 0.05 * dataset.md)


class TestModelConsistency:
    @pytest.mark.parametrize("name", [p.name for p in ALL_MODELS])
    def test_md_r_is_md_minus_pcbs(self, extractions, name):
        """The footprint model's structural law: MD - MDr = |PCB|."""
        params = extractions[name]
        assert params.md - params.md_r == len(params.pcbs)

    @pytest.mark.parametrize("name", [p.name for p in ALL_MODELS])
    def test_subset_relations(self, extractions, name):
        params = extractions[name]
        assert params.ucbs <= params.ecbs
        assert params.pcbs <= params.ecbs

    @pytest.mark.parametrize("name", [p.name for p in ALL_MODELS])
    def test_reconstructed_dataset_footprints_match_models(self, extractions, name):
        row = benchmark_spec(name)
        params = extractions[name]
        assert row.n_ecb == len(params.ecbs)
        assert row.n_pcb == len(params.pcbs)
        assert row.n_ucb == len(params.ucbs)


class TestCacheSizeSensitivity:
    @pytest.mark.parametrize("name", ["fdct", "statemate", "nsichneu", "minver"])
    def test_larger_cache_separates_conflicts(self, name):
        """Doubling the sets beyond the reference resolves the conflicting
        regions: more PCBs, never more demand."""
        program = benchmark_program(name)
        small = extract_parameters(program, reference_geometry())
        large = extract_parameters(
            program, reference_geometry().with_num_sets(1024)
        )
        assert len(large.pcbs) >= len(small.pcbs)
        assert large.md <= small.md

    @pytest.mark.parametrize("name", ["lcdnum", "ludcmp", "crc"])
    def test_smaller_cache_creates_conflicts(self, name):
        program = benchmark_program(name)
        reference = extract_parameters(program, reference_geometry())
        tiny = extract_parameters(
            program, reference_geometry().with_num_sets(32)
        )
        assert len(tiny.pcbs) <= len(reference.pcbs)
        assert tiny.md >= reference.md

    def test_ecbs_never_exceed_cache_size(self):
        geometry = reference_geometry().with_num_sets(32)
        for program in ALL_MODELS:
            params = extract_parameters(program, geometry)
            assert len(params.ecbs) <= 32


class TestBuilder:
    def test_rejects_empty_model(self):
        with pytest.raises(ProgramError):
            build_benchmark("empty", pd=100, pu=0)

    def test_rejects_oversized_footprint(self):
        with pytest.raises(ProgramError):
            build_benchmark("fat", pd=100, pu=200, u_conf=200)

    def test_builder_formulas(self):
        program = build_benchmark(
            "custom",
            pd=50_000,
            pu=10,
            p_only=3,
            u_conf=5,
            shadow=4,
            main_iters=6,
            conf_iters=2,
            conf_inner=3,
            uncached_once=7,
            uncached_loop=2,
        )
        params = extract_parameters(program, reference_geometry())
        assert len(params.ecbs) == 10 + 3 + 5 + 4
        assert len(params.pcbs) == 13
        assert len(params.ucbs) == 15
        assert params.md == 13 + 2 * 4 + 2 * 5 * 2 + 7 + 2 * 6
        assert params.md_r == params.md - 13
        assert params.pd == 50_000

    def test_branchy_builder(self):
        program = build_benchmark(
            "branchy",
            pd=20_000,
            pu=8,
            u_conf=6,
            main_iters=4,
            conf_iters=2,
            branchy=True,
        )
        params = extract_parameters(program, reference_geometry())
        assert len(params.ecbs) == 14
        assert params.md == 8 + 2 * 6 * 2


class TestDatasetTable:
    def test_twenty_five_rows(self):
        assert len(benchmark_table()) == 25

    def test_sources_labelled(self):
        sources = {row.source for row in benchmark_table()}
        assert sources == {"published-table1", "reconstructed"}

    def test_row_invariants(self):
        for row in benchmark_table():
            assert 0 <= row.md_r <= row.md
            assert row.n_ucb <= row.n_ecb
            assert row.n_pcb <= row.n_ecb
            assert row.pd > 0

    def test_persistence_ratio_diversity(self):
        ratios = [row.persistence_ratio for row in benchmark_table()]
        assert min(ratios) < 0.2  # strongly persistent benchmarks exist
        assert max(ratios) > 0.9  # and nearly persistence-free ones too
