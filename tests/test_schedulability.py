"""Unit tests for the schedulability predicate and the perfect-bus test."""

import pytest

from repro.analysis.config import BASELINE, PERSISTENCE_AWARE
from repro.analysis.schedulability import check_schedulability, is_schedulable
from repro.analysis.weighted import weighted_schedulability
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet


def make_task(name, priority, core, pd=50, md=5, md_r=None, period=1000):
    return Task(
        name=name,
        pd=pd,
        md=md,
        md_r=md_r,
        period=period,
        deadline=period,
        priority=priority,
        core=core,
    )


class TestQuickRejects:
    def test_overutilised_core_rejected_without_wcrt(self):
        t1 = make_task("a", 1, 0, pd=700, md=10)
        t2 = make_task("b", 2, 0, pd=700, md=10)
        verdict = check_schedulability(
            TaskSet([t1, t2]), Platform(num_cores=1, d_mem=10)
        )
        assert not verdict.schedulable
        assert "utilisation" in verdict.reason
        assert verdict.wcrt is None

    def test_feasible_set_accepted(self):
        t1 = make_task("a", 1, 0)
        t2 = make_task("b", 2, 1)
        platform = Platform(num_cores=2, d_mem=10)
        verdict = check_schedulability(TaskSet([t1, t2]), platform)
        assert verdict.schedulable
        assert verdict.wcrt is not None


class TestPerfectBus:
    def test_bus_saturation_rejected(self):
        # Each core is fine on its own (utilisation 0.91) but the four
        # cores' residual demands add up to 3.6 on the shared bus.
        tasks = [
            make_task(f"t{i}", i, i - 1, pd=10, md=90, md_r=90, period=1000)
            for i in range(1, 5)
        ]
        platform = Platform(num_cores=4, d_mem=10, bus_policy=BusPolicy.PERFECT)
        verdict = check_schedulability(TaskSet(tasks), platform)
        assert not verdict.schedulable
        assert verdict.bus_utilization is not None
        assert verdict.bus_utilization > 1.0

    def test_light_set_accepted_with_bus_utilisation_reported(self):
        tasks = [make_task("a", 1, 0), make_task("b", 2, 1)]
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.PERFECT)
        verdict = check_schedulability(TaskSet(tasks), platform)
        assert verdict.schedulable
        assert 0 <= verdict.bus_utilization <= 1

    def test_perfect_dominates_real_arbiters(self):
        tasks = [
            make_task(f"t{i}", i, i % 2, pd=100, md=30, md_r=5, period=1500)
            for i in range(1, 7)
        ]
        taskset = TaskSet(tasks)
        base = Platform(num_cores=2, d_mem=10)
        for policy in (BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA):
            real = is_schedulable(taskset, base.with_bus_policy(policy))
            perfect = is_schedulable(
                taskset, base.with_bus_policy(BusPolicy.PERFECT)
            )
            assert perfect or not real


class TestPersistenceDominance:
    def test_baseline_schedulable_implies_persistence_schedulable(self):
        # The persistence-aware bound is pointwise <= the baseline bound, so
        # schedulability verdicts must be ordered.
        tasks = [
            make_task(f"t{i}", i, i % 2, pd=80, md=25, md_r=4, period=1400)
            for i in range(1, 9)
        ]
        taskset = TaskSet(tasks)
        for policy in (BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA):
            platform = Platform(num_cores=2, d_mem=10, bus_policy=policy)
            if is_schedulable(taskset, platform, BASELINE):
                assert is_schedulable(taskset, platform, PERSISTENCE_AWARE)


class TestWeightedMeasure:
    def test_all_schedulable(self):
        assert weighted_schedulability([(1.0, True), (2.0, True)]) == 1.0

    def test_none_schedulable(self):
        assert weighted_schedulability([(1.0, False), (2.0, False)]) == 0.0

    def test_weighting_emphasises_heavy_sets(self):
        # A heavy schedulable set outweighs a light unschedulable one.
        assert weighted_schedulability([(3.0, True), (1.0, False)]) == 0.75

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            weighted_schedulability([])

    def test_rejects_negative_weight(self):
        with pytest.raises(AnalysisError):
            weighted_schedulability([(-1.0, True)])

    def test_rejects_zero_total_weight(self):
        with pytest.raises(AnalysisError):
            weighted_schedulability([(0.0, True)])
