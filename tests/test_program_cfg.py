"""Unit tests for the structured program IR."""

import pytest

from repro.errors import ProgramError
from repro.model.platform import CacheGeometry
from repro.program.cfg import (
    Alt,
    Block,
    INSTRUCTION_SIZE,
    Loop,
    Program,
    Seq,
    worst_case_work,
)

GEO = CacheGeometry(num_sets=16, block_size=32)


class TestBlock:
    def test_memory_blocks_single_line(self):
        block = Block(start=0, n_instructions=8)
        assert block.memory_blocks(GEO) == (0,)

    def test_memory_blocks_spanning_lines(self):
        block = Block(start=0, n_instructions=20)
        # 20 * 4 = 80 bytes -> lines 0..2.
        assert block.memory_blocks(GEO) == (0, 1, 2)

    def test_memory_blocks_unaligned_start(self):
        block = Block(start=28, n_instructions=2)
        # bytes 28..35 straddle lines 0 and 1.
        assert block.memory_blocks(GEO) == (0, 1)

    def test_work_defaults_to_instruction_count(self):
        assert Block(start=0, n_instructions=5).work == 5

    def test_explicit_work(self):
        assert Block(start=0, n_instructions=5, work=99).work == 99

    def test_end_address(self):
        block = Block(start=64, n_instructions=4)
        assert block.end == 64 + 4 * INSTRUCTION_SIZE

    def test_rejects_negative_start(self):
        with pytest.raises(ProgramError):
            Block(start=-4, n_instructions=1)

    def test_rejects_empty_block(self):
        with pytest.raises(ProgramError):
            Block(start=0, n_instructions=0)

    def test_rejects_negative_uncached(self):
        with pytest.raises(ProgramError):
            Block(start=0, n_instructions=1, uncached=-1)

    def test_relocated_shifts_addresses(self):
        block = Block(start=32, n_instructions=8, work=10, uncached=3)
        moved = block.relocated(64)
        assert moved.start == 96
        assert moved.work == 10
        assert moved.uncached == 3


class TestComposites:
    def test_seq_flattens_nested_seqs(self):
        inner = Seq(Block(0, 1), Block(32, 1))
        outer = Seq(inner, Block(64, 1))
        assert len(outer.parts) == 3

    def test_seq_rejects_empty(self):
        with pytest.raises(ProgramError):
            Seq()

    def test_loop_rejects_zero_bound(self):
        with pytest.raises(ProgramError):
            Loop(body=Block(0, 1), bound=0)

    def test_alt_needs_two_choices(self):
        with pytest.raises(ProgramError):
            Alt(Block(0, 1))

    def test_iter_blocks_covers_all_leaves(self):
        program = Program(
            name="p",
            root=Seq(
                Block(0, 1),
                Loop(Alt(Block(32, 1), Block(64, 1)), bound=3),
            ),
        )
        starts = sorted(b.start for b in program.iter_blocks())
        assert starts == [0, 32, 64]

    def test_memory_blocks_union_over_paths(self):
        program = Program(
            name="p", root=Alt(Block(0, 8), Block(32 * 5, 8))
        )
        assert program.memory_blocks(GEO) == frozenset({0, 5})


class TestScaling:
    def test_scaled_reduces_loop_bounds(self):
        program = Program(name="p", root=Loop(Block(0, 1), bound=100))
        scaled = program.scaled(0.1)
        assert scaled.root.bound == 10

    def test_scaled_never_below_one(self):
        program = Program(name="p", root=Loop(Block(0, 1), bound=3))
        assert program.scaled(0.01).root.bound == 1

    def test_scaled_rejects_non_positive(self):
        program = Program(name="p", root=Block(0, 1))
        with pytest.raises(ProgramError):
            program.scaled(0)

    def test_relocated_program(self):
        program = Program(name="p", root=Seq(Block(0, 8), Loop(Block(32, 8), 2)))
        moved = program.relocated(256)
        starts = sorted(b.start for b in moved.iter_blocks())
        assert starts == [256, 288]

    def test_relocated_rejects_negative(self):
        program = Program(name="p", root=Block(0, 1))
        with pytest.raises(ProgramError):
            program.relocated(-32)


class TestWorstCaseWork:
    def test_block(self):
        assert worst_case_work(Block(0, 4, work=7)) == 7

    def test_seq_sums(self):
        assert worst_case_work(Seq(Block(0, 1, work=3), Block(32, 1, work=4))) == 7

    def test_loop_multiplies(self):
        assert worst_case_work(Loop(Block(0, 1, work=5), bound=6)) == 30

    def test_alt_takes_max(self):
        assert worst_case_work(Alt(Block(0, 1, work=2), Block(32, 1, work=9))) == 9

    def test_nested(self):
        node = Seq(
            Block(0, 1, work=1),
            Loop(Alt(Block(32, 1, work=2), Block(64, 1, work=5)), bound=4),
        )
        assert worst_case_work(node) == 1 + 4 * 5

    def test_footprint_bytes(self):
        program = Program(name="p", root=Seq(Block(0, 8), Block(320, 8)))
        assert program.footprint_bytes() == 320 + 32
