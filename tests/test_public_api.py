"""Public-API surface checks: exports exist, are documented, and coherent."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.model",
    "repro.program",
    "repro.cacheanalysis",
    "repro.crpd",
    "repro.persistence",
    "repro.businterference",
    "repro.analysis",
    "repro.generation",
    "repro.sim",
    "repro.data",
    "repro.experiments",
    "repro.serialization",
    "repro.errors",
)


class TestImportSurface:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES[:-2])
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        if hasattr(module, "__all__"):
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"


class TestDocumentation:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_error_hierarchy_rooted(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                inspect.isclass(obj)
                and issubclass(obj, Exception)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name


class TestConsistency:
    def test_paper_configs_are_frozen_defaults(self):
        from repro import BASELINE, PERSISTENCE_AWARE

        assert PERSISTENCE_AWARE.persistence is True
        assert BASELINE.persistence is False
        # The paper's approach selections.
        assert PERSISTENCE_AWARE.crpd_approach.value == "ecb-union"
        assert PERSISTENCE_AWARE.cpro_approach.value == "cpro-union"

    def test_enums_have_distinct_values(self):
        from repro.crpd.approaches import CrpdApproach
        from repro.model.platform import BusPolicy
        from repro.persistence.cpro import CproApproach

        for enum_type in (CrpdApproach, CproApproach, BusPolicy):
            values = [member.value for member in enum_type]
            assert len(set(values)) == len(values)
