"""Unit tests of the graceful-degradation ladder.

The soundness claims (degraded bounds dominate exact ones; a degraded
"schedulable" verdict agrees with the exact analysis) are replayed on the
whole fuzz grid by the ``ladder-dominance`` oracle in
:mod:`repro.verify.oracles`; here the mechanics are pinned: tier
fall-through, budget slicing, parent exhaustion, bit-identity of the
unpressured path and the coarse tier's verdict shapes.
"""

import random

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.ladder import (
    AnalysisLadder,
    DEFAULT_TIERS,
    LadderResult,
    LadderTier,
    SOUND_DEGRADED,
    SOUND_EXACT,
    SOUND_UNKNOWN,
    TIER_BASELINE,
    TIER_COARSE,
    TIER_EXACT,
    coarse_bound,
    run_ladder,
)
from repro.analysis.wcrt import analyze_taskset
from repro.budget import Budget
from repro.errors import AnalysisError, BudgetExceeded, Cancelled
from repro.budget import CancelToken
from repro.experiments.config import default_platform
from repro.generation.taskset_gen import generate_taskset
from repro.perf import PerfCounters


@pytest.fixture(scope="module")
def platform():
    return default_platform()


@pytest.fixture(scope="module")
def taskset(platform):
    return generate_taskset(random.Random(5), platform, 0.3)


def tiny_exact_tiers(*, baseline_fraction=1.0, coarse=True):
    """Ladder whose exact tier gets a deliberately starved slice."""
    tiers = [LadderTier(TIER_EXACT, 0.0001)]
    tiers.append(LadderTier(TIER_BASELINE, baseline_fraction))
    if coarse:
        tiers.append(LadderTier(TIER_COARSE, 1.0))
    return AnalysisLadder(tiers)


class TestLadderShape:
    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError):
            AnalysisLadder(())

    def test_default_tiers_cover_the_lattice(self):
        assert [tier.name for tier in DEFAULT_TIERS] == [
            TIER_EXACT,
            TIER_BASELINE,
            TIER_COARSE,
        ]

    def test_degraded_property(self, taskset, platform):
        result = run_ladder(taskset, platform)
        assert isinstance(result, LadderResult)
        assert not result.degraded
        assert LadderResult(TIER_COARSE, SOUND_DEGRADED, None).degraded


class TestUnpressuredBitIdentity:
    def test_no_budget_runs_only_the_exact_tier(self, taskset, platform):
        perf = PerfCounters()
        outcome = run_ladder(taskset, platform, perf=perf)
        assert outcome.tier == TIER_EXACT
        assert outcome.soundness == SOUND_EXACT
        assert outcome.tiers_tried == (TIER_EXACT,)
        assert perf.ladder_tier_runs == 1
        exact = analyze_taskset(taskset, platform)
        assert outcome.result == exact

    def test_generous_budget_is_still_bit_identical(self, taskset, platform):
        budget = Budget(max_iterations=10_000_000).start()
        outcome = run_ladder(taskset, platform, budget=budget)
        assert outcome.tier == TIER_EXACT
        assert outcome.result == analyze_taskset(taskset, platform)


class TestFallThrough:
    def test_starved_exact_tier_falls_to_baseline(self, taskset, platform):
        perf = PerfCounters()
        budget = Budget(max_iterations=100_000).start()
        outcome = tiny_exact_tiers().run(
            taskset, platform, budget=budget, perf=perf
        )
        assert outcome.tier == TIER_BASELINE
        assert outcome.soundness == SOUND_DEGRADED
        assert outcome.tiers_tried == (TIER_EXACT, TIER_BASELINE)
        assert perf.ladder_tier_runs == 2
        # Dominance: the baseline's bounds are pointwise >= the exact
        # persistence-aware bounds (the persistence-tightens property).
        exact = analyze_taskset(taskset, platform)
        assert outcome.result.schedulable == exact.schedulable
        for task, bound in exact.response_times.items():
            assert outcome.result.response_times[task] >= bound

    def test_starved_exact_and_baseline_fall_to_coarse(
        self, taskset, platform
    ):
        budget = Budget(max_iterations=100_000).start()
        ladder = AnalysisLadder(
            (
                LadderTier(TIER_EXACT, 0.0001),
                LadderTier(TIER_BASELINE, 0.0001),
                LadderTier(TIER_COARSE, 1.0),
            )
        )
        outcome = ladder.run(taskset, platform, budget=budget)
        assert outcome.tier == TIER_COARSE
        assert outcome.soundness == SOUND_DEGRADED
        assert outcome.tiers_tried == (
            TIER_EXACT,
            TIER_BASELINE,
            TIER_COARSE,
        )

    def test_baseline_request_skips_the_baseline_tier(
        self, taskset, platform
    ):
        budget = Budget(max_iterations=100_000).start()
        outcome = tiny_exact_tiers().run(
            taskset,
            platform,
            AnalysisConfig(persistence=False),
            budget=budget,
        )
        # The request already is the baseline: re-running it under a
        # smaller slice is pointless, so the ladder goes straight to
        # the coarse tier.
        assert TIER_BASELINE not in outcome.tiers_tried
        assert outcome.tier == TIER_COARSE

    def test_everything_exhausted_is_unknown(self, taskset, platform):
        budget = Budget(max_iterations=3).start()
        outcome = run_ladder(taskset, platform, budget=budget)
        assert outcome.tier is None
        assert outcome.soundness == SOUND_UNKNOWN
        assert outcome.abort is not None
        assert isinstance(outcome.abort, BudgetExceeded)

    def test_parent_exhaustion_ends_the_descent(self, taskset, platform):
        # A 1-iteration parent: the exact tier's slice aborts via the
        # *parent* ceiling, and the next budget.child() raises — the
        # descent must stop rather than run later tiers for free.
        budget = Budget(max_iterations=1).start()
        outcome = run_ladder(taskset, platform, budget=budget)
        assert outcome.soundness == SOUND_UNKNOWN
        assert outcome.tiers_tried == (TIER_EXACT,)

    def test_cancellation_propagates(self, taskset, platform):
        token = CancelToken()
        token.cancel()
        budget = Budget(max_iterations=100_000, token=token).start()
        with pytest.raises(Cancelled):
            run_ladder(taskset, platform, budget=budget)


class TestCoarseBound:
    def test_dominates_the_exact_analysis(self, taskset, platform):
        exact = analyze_taskset(taskset, platform)
        coarse = coarse_bound(taskset, platform)
        if coarse.schedulable:
            # A coarse "schedulable" verdict is sound: the exact analysis
            # agrees and its bounds are pointwise tighter.
            assert exact.schedulable
            for task, bound in exact.response_times.items():
                assert coarse.response_times[task] >= bound

    def test_runs_one_outer_round(self, taskset, platform):
        coarse = coarse_bound(taskset, platform)
        assert coarse.outer_iterations <= 1

    def test_conservative_failure_has_no_failed_task(self, platform):
        # Build an overloaded set the coarse tier cannot prove
        # schedulable; its negative verdict must use the conservative
        # shape (failed_task=None) unless the overrun is the exact
        # isolated-WCET case.
        taskset = generate_taskset(random.Random(11), platform, 0.95)
        coarse = coarse_bound(taskset, platform)
        if not coarse.schedulable and coarse.failed_task is not None:
            # failed_task set = an exact negative: isolated WCET alone
            # overruns, which the full analysis would report identically.
            exact = analyze_taskset(taskset, platform)
            assert not exact.schedulable

    def test_respects_its_budget(self, taskset, platform):
        with pytest.raises(BudgetExceeded):
            coarse_bound(
                taskset,
                platform,
                budget=Budget(max_iterations=1).start(),
            )


class TestTierValidation:
    def test_child_fraction_validation_via_ladder(self, taskset, platform):
        budget = Budget(max_iterations=100).start()
        ladder = AnalysisLadder((LadderTier(TIER_EXACT, 2.0),))
        with pytest.raises(AnalysisError):
            ladder.run(taskset, platform, budget=budget)
