"""Unit tests for the sensitivity (breakdown) analyses."""

import random

import pytest

from repro.analysis import (
    BASELINE,
    PERSISTENCE_AWARE,
    breakdown_d_mem,
    breakdown_period_scale,
    is_schedulable,
)
from repro.errors import AnalysisError
from repro.generation import generate_taskset
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet


def make_task(name, priority, core, pd, md, period):
    return Task(
        name=name, pd=pd, md=md, period=period, deadline=period,
        priority=priority, core=core,
    )


@pytest.fixture()
def easy_set():
    t1 = make_task("a", 1, 0, pd=100, md=10, period=2000)
    t2 = make_task("b", 2, 0, pd=100, md=10, period=4000)
    return TaskSet([t1, t2])


@pytest.fixture()
def platform():
    return Platform(num_cores=1, d_mem=10, bus_policy=BusPolicy.FP)


class TestPeriodScale:
    def test_scale_at_most_one_for_schedulable_set(self, easy_set, platform):
        assert is_schedulable(easy_set, platform)
        factor = breakdown_period_scale(easy_set, platform)
        assert factor is not None
        assert factor <= 1.0

    def test_result_is_actually_schedulable(self, easy_set, platform):
        factor = breakdown_period_scale(easy_set, platform, precision=0.005)
        from repro.analysis.sensitivity import _scaled_taskset

        assert is_schedulable(_scaled_taskset(easy_set, factor), platform)

    def test_unschedulable_everywhere_returns_none(self, platform):
        hopeless = TaskSet(
            [make_task("x", 1, 0, pd=100, md=200, period=300)]
        )
        # Scaling periods does not help: isolated WCET 2100 > any scaled D
        # up to upper=4 -> 1200.
        assert breakdown_period_scale(hopeless, platform) is None

    def test_tight_set_needs_larger_factor(self, platform):
        loose = TaskSet([make_task("a", 1, 0, pd=100, md=10, period=4000)])
        tight = TaskSet(
            [
                make_task("a", 1, 0, pd=100, md=10, period=450),
                make_task("b", 2, 0, pd=100, md=10, period=460),
            ]
        )
        loose_factor = breakdown_period_scale(loose, platform)
        tight_factor = breakdown_period_scale(tight, platform)
        assert loose_factor <= tight_factor

    def test_parameter_validation(self, easy_set, platform):
        with pytest.raises(AnalysisError):
            breakdown_period_scale(easy_set, platform, precision=0)
        with pytest.raises(AnalysisError):
            breakdown_period_scale(easy_set, platform, lower=2.0, upper=1.0)


class TestDmemBreakdown:
    def test_returns_tolerated_latency(self, easy_set, platform):
        latency = breakdown_d_mem(easy_set, platform)
        assert latency is not None
        assert is_schedulable(easy_set, platform.with_d_mem(latency))
        assert not is_schedulable(easy_set, platform.with_d_mem(latency + 1))

    def test_none_when_hopeless(self, platform):
        hopeless = TaskSet([make_task("x", 1, 0, pd=350, md=10, period=300)])
        assert breakdown_d_mem(hopeless, platform) is None

    def test_upper_cap_returned_when_never_failing(self, platform):
        airy = TaskSet([make_task("a", 1, 0, pd=10, md=1, period=100_000)])
        assert breakdown_d_mem(airy, platform, upper=50) == 50

    def test_persistence_buys_latency_headroom(self):
        platform = Platform(num_cores=4, d_mem=10, bus_policy=BusPolicy.FP)
        rng = random.Random(9)
        taskset = generate_taskset(rng, platform, 0.35)
        aware = breakdown_d_mem(taskset, platform, PERSISTENCE_AWARE)
        base = breakdown_d_mem(taskset, platform, BASELINE)
        if aware is None:
            pytest.skip("set unschedulable even with persistence")
        assert base is None or aware >= base

    def test_parameter_validation(self, easy_set, platform):
        with pytest.raises(AnalysisError):
            breakdown_d_mem(easy_set, platform, upper=0)
