"""Differential correctness tests of the analysis-kernel optimisations.

Three optimisations must each be an *invisible* one — for every task set,
platform and approach combination they have to return results identical to
their reference path (same verdict, same per-task response times, same
iteration counts):

* the epoch-keyed memoization of the interference terms (see
  :class:`repro.businterference.context.AnalysisContext`) versus
  ``AnalysisConfig(memoization=False)``;
* the packed-bitmask cache-set kernel (see
  :class:`repro.model.interference.InterferenceTable`) versus the retained
  ``frozenset`` algebra (``AnalysisConfig(bitset_kernel=False)``);
* the warm-started fixed point (re-verifying a previously converged map)
  versus a cold analysis of a fresh task-set object;
* the batched sweep-point pair-table compilation
  (:class:`repro.model.interference.BatchInterferenceTable`, with or
  without the numpy popcount backend) versus lazy per-lookup fills
  (``AnalysisConfig(array_kernel=False)``);
* the adjacent warm-start chains (cross-utilisation hint chains of
  :func:`repro.experiments.runner.evaluate_sample` and the hint-chained
  sensitivity bisections) versus hint-free cold runs;
* the dominance-ordered variant evaluation of ``evaluate_sample`` (both
  the tightest-first and loosest-first orders) versus brute-forcing every
  variant independently;
* the lockstep multi-sample engine
  (:func:`repro.analysis.lockstep.analyze_taskset_batch`, with and
  without the numpy row fold) versus the sequential per-lane path
  (``AnalysisConfig(lockstep_kernel=False)``);
* the worker-resident state plane
  (:class:`repro.experiments.stateplane.StatePlane` replaying resident
  task sets through re-verified warm starts) versus residency disabled
  (``REPRO_STATE_PLANE_CAP=0``).

This file pins them down over broad randomized samples; the fuzzing
counterparts are the ``memo-identity`` / ``bitset-identity`` /
``warm-start-identity`` / ``batch-identity`` /
``adjacent-warmstart-identity`` / ``lockstep-identity`` /
``resident-plane-identity`` oracles of :mod:`repro.verify.oracles`.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.schedulability import check_schedulability
from repro.analysis.sensitivity import breakdown_d_mem, breakdown_period_scale
from repro.analysis.wcrt import WarmHint, analyze_taskset
from repro.budget import Budget
from repro.crpd.approaches import CrpdApproach
from repro.experiments.config import (
    SweepSettings,
    default_platform,
    standard_variants,
)
from repro.experiments.runner import _sample_seed, evaluate_sample, run_curve
from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.model import interference as interference_mod
from repro.model.interference import prefill_batch
from repro.model.platform import BusPolicy, CacheGeometry
from repro.perf import PerfCounters
from repro.persistence.cpro import CproApproach

#: Seeds x utilisations: 60 distinct random task sets, spanning trivially
#: schedulable, borderline and hopeless regions of the sweep.
SAMPLE_GRID = tuple(
    (seed, utilization)
    for seed in range(12)
    for utilization in (0.15, 0.35, 0.5, 0.65, 0.85)
)


def _compare(taskset, platform, config):
    memoized = analyze_taskset(taskset, platform, config)
    reference = analyze_taskset(
        taskset, platform, replace(config, memoization=False)
    )
    # WcrtResult equality covers verdict, per-task response times, failing
    # task and outer iteration count (perf counters are excluded).
    assert memoized == reference
    return memoized


class TestMemoizationIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID)
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        taskset = generate_taskset(random.Random(seed), base, utilization)
        for policy in BusPolicy:
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(4):
            taskset = generate_taskset(
                random.Random(100 + seed), base, 0.4 + 0.1 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                _compare(taskset, base.with_bus_policy(policy), config)

    @pytest.mark.parametrize("policy", list(BusPolicy))
    def test_baseline_analysis_identical(self, policy):
        base = default_platform()
        config = AnalysisConfig(persistence=False)
        for seed in range(8):
            taskset = generate_taskset(
                random.Random(200 + seed), base, 0.3 + 0.08 * seed
            )
            _compare(taskset, base.with_bus_policy(policy), config)

    def test_persistence_in_low_identical(self):
        base = default_platform()
        config = AnalysisConfig(persistence_in_low=True)
        for seed in range(6):
            taskset = generate_taskset(
                random.Random(300 + seed), base, 0.35 + 0.1 * seed
            )
            _compare(taskset, base.with_bus_policy(BusPolicy.FP), config)

    def test_reanalysis_of_same_taskset_is_stable(self):
        # Shared derived tables must not leak state between configurations
        # analysing the same task set object.
        base = default_platform()
        taskset = generate_taskset(random.Random(42), base, 0.5)
        first = [
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())
            for policy in BusPolicy
        ]
        second = [
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())
            for policy in BusPolicy
        ]
        assert first == second


def _compare_bitset(taskset, platform, config):
    bitset = analyze_taskset(
        taskset, platform, replace(config, bitset_kernel=True)
    )
    reference = analyze_taskset(
        taskset, platform, replace(config, bitset_kernel=False)
    )
    assert bitset == reference
    return bitset


class TestBitsetKernelIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::3])
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        taskset = generate_taskset(random.Random(seed), base, utilization)
        for policy in BusPolicy:
            _compare_bitset(
                taskset, base.with_bus_policy(policy), AnalysisConfig()
            )

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(3):
            taskset = generate_taskset(
                random.Random(400 + seed), base, 0.35 + 0.15 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                _compare_bitset(taskset, base.with_bus_policy(policy), config)

    def test_reference_path_never_builds_a_table(self):
        base = default_platform()
        taskset = generate_taskset(random.Random(500), base, 0.4)
        result = analyze_taskset(
            taskset, base, AnalysisConfig(bitset_kernel=False)
        )
        assert result.perf.bitset_table_builds == 0
        result = analyze_taskset(
            taskset, base, AnalysisConfig(bitset_kernel=True)
        )
        assert result.perf.bitset_table_builds == 1


class TestBudgetIsInvisible:
    """A budget generous enough to finish must never perturb a result.

    Ticks only count and compare (see :mod:`repro.budget`), so a
    completed analysis under an active budget has to be bit-identical to
    the budget-less run — same verdict, same per-task bounds, same outer
    iteration count.  The abort-side properties (partial results, cache
    soundness after aborts) live in ``tests/test_budget.py``.
    """

    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::3])
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        config = AnalysisConfig()
        for policy in BusPolicy:
            platform = base.with_bus_policy(policy)
            taskset = generate_taskset(random.Random(seed), base, utilization)
            plain = analyze_taskset(taskset, platform, config)
            budget = Budget(max_iterations=10**9, wall_seconds=3600.0)
            budgeted = analyze_taskset(
                taskset, platform, config, budget=budget
            )
            assert budgeted == plain
            assert budget.iterations > 0

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(3):
            taskset = generate_taskset(
                random.Random(700 + seed), base, 0.35 + 0.15 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                platform = base.with_bus_policy(policy)
                plain = analyze_taskset(taskset, platform, config)
                budgeted = analyze_taskset(
                    taskset,
                    platform,
                    config,
                    budget=Budget(max_iterations=10**9),
                )
                assert budgeted == plain


class TestWarmStartIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::4])
    def test_replay_bit_identical_to_cold(self, seed, utilization):
        base = default_platform()
        config = AnalysisConfig()
        for policy in BusPolicy:
            platform = base.with_bus_policy(policy)
            taskset = generate_taskset(random.Random(seed), base, utilization)
            cold = analyze_taskset(taskset, platform, config)
            warm = analyze_taskset(taskset, platform, config)
            # WcrtResult equality covers verdict, bounds, failing task and
            # the reported outer iteration count (perf is excluded).
            assert warm == cold
            if cold.schedulable:
                assert warm.perf.warm_starts == 1
                assert warm.perf.outer_iterations == 1
                assert (
                    warm.perf.warm_start_iterations_saved
                    == cold.outer_iterations - 1
                )
            else:
                # Unschedulable results must never seed a warm start.
                assert warm.perf.warm_starts == 0

    def test_seeds_are_config_keyed(self):
        # A seed recorded under one config must not leak into analyses
        # under another: every distinct config gets its own cold run.
        base = default_platform()
        taskset = generate_taskset(random.Random(600), base, 0.4)
        aware = AnalysisConfig(persistence=True)
        oblivious = AnalysisConfig(persistence=False)
        first = analyze_taskset(taskset, base, aware)
        cross = analyze_taskset(taskset, base, oblivious)
        assert cross.perf.warm_starts == 0
        again = analyze_taskset(taskset, base, oblivious)
        if cross.schedulable:
            assert again.perf.warm_starts == 1
        assert again == cross
        assert analyze_taskset(taskset, base, aware) == first

    def test_disabled_warm_start_always_runs_cold(self):
        base = default_platform()
        config = AnalysisConfig(warm_start=False)
        taskset = generate_taskset(random.Random(601), base, 0.4)
        first = analyze_taskset(taskset, base, config)
        second = analyze_taskset(taskset, base, config)
        assert second == first
        assert second.perf.warm_starts == 0
        assert second.perf.outer_iterations == first.perf.outer_iterations


def _small_platform():
    """The default platform shrunk to 64 cache sets.

    Every mask of a 64-set cache fits one machine word, which is the
    precondition for the numpy ``uint64`` popcount backend — the grid
    over this platform therefore exercises the vectorised path whenever
    numpy is importable, and the pure-Python word loop otherwise.
    """
    base = default_platform()
    return replace(base, cache=CacheGeometry(num_sets=64, block_size=32))


def _compare_batch(taskset, platform, config):
    """Batched pair-table compilation vs the lazy reference, bit for bit."""
    batched_config = replace(config, bitset_kernel=True, array_kernel=True)
    prefill_batch(
        (taskset,),
        batched_config.crpd_approach,
        batched_config.cpro_approach,
    )
    batched = analyze_taskset(taskset, platform, batched_config)
    reference = analyze_taskset(
        taskset, platform, replace(config, array_kernel=False)
    )
    assert batched == reference
    return batched


class TestBatchKernelIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::3])
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        taskset = generate_taskset(random.Random(seed), base, utilization)
        for policy in BusPolicy:
            _compare_batch(
                taskset, base.with_bus_policy(policy), AnalysisConfig()
            )

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(3):
            taskset = generate_taskset(
                random.Random(800 + seed), base, 0.35 + 0.15 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                _compare_batch(taskset, base.with_bus_policy(policy), config)

    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::4])
    def test_small_platform_identical(self, seed, utilization):
        # <= 64 cache sets: the numpy uint64 popcount backend engages
        # when numpy is importable (pure-Python word loop otherwise).
        small = _small_platform()
        taskset = generate_taskset(random.Random(seed), small, utilization)
        for policy in BusPolicy:
            _compare_batch(
                taskset, small.with_bus_policy(policy), AnalysisConfig()
            )

    def test_vector_backend_engages_on_small_platform(self):
        small = _small_platform()
        taskset = generate_taskset(random.Random(900), small, 0.4)
        perf = PerfCounters()
        batch = prefill_batch(
            (taskset,),
            AnalysisConfig().crpd_approach,
            AnalysisConfig().cpro_approach,
            perf=perf,
        )
        assert batch is not None
        assert perf.batch_analyses == 1
        if interference_mod._array_popcounts_available():
            assert perf.array_kernel_batches == 1
        else:
            assert perf.array_kernel_batches == 0

    def test_numpy_absent_pure_python_fallback(self, monkeypatch):
        # Simulate a container without the optional `.[fast]` extra: the
        # batch must compile through the pure-Python word loop and stay
        # bit-identical to the lazy reference.
        monkeypatch.setattr(interference_mod, "_np", None)
        assert not interference_mod._array_popcounts_available()
        small = _small_platform()
        config = AnalysisConfig()
        for seed in (901, 902):
            taskset = generate_taskset(random.Random(seed), small, 0.45)
            perf = PerfCounters()
            prefill_batch(
                (taskset,),
                config.crpd_approach,
                config.cpro_approach,
                perf=perf,
            )
            assert perf.batch_analyses == 1
            assert perf.array_kernel_batches == 0
            for policy in (BusPolicy.FP, BusPolicy.TDMA):
                platform = small.with_bus_policy(policy)
                batched = analyze_taskset(taskset, platform, config)
                reference = analyze_taskset(
                    taskset, platform, replace(config, array_kernel=False)
                )
                assert batched == reference


class TestAdjacentWarmStartIsInvisible:
    """Cross-analysis hint chains never change a verdict or a bound."""

    def test_chained_sample_identical_and_chain_engages(self):
        base = default_platform()
        variants = standard_variants(True)
        generation = GenerationConfig()
        taskset = generate_taskset(random.Random(9000), base, 0.3)
        chain = {}
        first = evaluate_sample(
            base, 0.3, variants, generation, 9000,
            taskset=taskset, hint_chain=chain,
        )
        assert chain  # schedulable analyses donated converged maps
        # Re-evaluate an equal-but-fresh task set with the chain attached:
        # hints verify exactly, and the verdicts stay bit-identical to a
        # chain-free evaluation.
        again = generate_taskset(random.Random(9000), base, 0.3)
        perf = PerfCounters()
        chained = evaluate_sample(
            base, 0.3, variants, generation, 9000, perf,
            taskset=again, hint_chain=chain,
        )
        cold = evaluate_sample(
            base, 0.3, variants, generation, 9000,
            taskset=generate_taskset(random.Random(9000), base, 0.3),
        )
        assert chained.verdicts == cold.verdicts == first.verdicts
        assert perf.adjacent_warm_starts >= 1
        assert perf.adjacent_warm_start_iterations_saved >= 0

    def test_curve_chains_bit_identical_to_cold_samples(self):
        base = default_platform()
        variants = standard_variants(True)
        settings = SweepSettings(
            samples=4,
            seed=77,
            utilizations=(0.3, 0.4, 0.5),
            jobs=1,
        )
        outcomes = run_curve(base, variants, settings)
        for point, utilization in enumerate(settings.utilizations):
            for i, outcome in enumerate(outcomes[utilization]):
                seed = _sample_seed(settings.seed, point, i)
                cold = evaluate_sample(
                    base, utilization, variants, settings.generation, seed
                )
                assert outcome.verdicts == cold.verdicts
                assert outcome.weight == cold.weight

    @pytest.mark.parametrize("policy", [BusPolicy.FP, BusPolicy.RR])
    def test_hint_chained_bisections_identical(self, policy):
        base = default_platform().with_bus_policy(policy)
        chained_config = AnalysisConfig()
        cold_config = replace(chained_config, warm_start=False)
        for seed in (9100, 9101, 9102):
            taskset = generate_taskset(random.Random(seed), base, 0.4)
            perf = PerfCounters()
            assert breakdown_d_mem(
                taskset, base, chained_config, perf=perf
            ) == breakdown_d_mem(
                generate_taskset(random.Random(seed), base, 0.4),
                base,
                cold_config,
            )
            assert breakdown_period_scale(
                generate_taskset(random.Random(seed), base, 0.4),
                base,
                chained_config,
            ) == breakdown_period_scale(
                generate_taskset(random.Random(seed), base, 0.4),
                base,
                cold_config,
            )

    def test_foreign_hint_never_perturbs_a_cold_analysis(self):
        # A hint from a *different* problem (scaled periods) must either
        # verify exactly or be discarded — the result is bit-identical to
        # the cold analysis in both cases.
        base = default_platform()
        config = AnalysisConfig()
        for seed in (9200, 9201):
            taskset = generate_taskset(random.Random(seed), base, 0.45)
            donor_set = generate_taskset(random.Random(seed), base, 0.45)
            scaled = donor_set  # same structure, analysed independently
            donor = analyze_taskset(scaled, base, config)
            if not donor.schedulable:
                continue
            hint = WarmHint(
                response_times={
                    task.priority: value
                    for task, value in donor.response_times.items()
                },
                outer_iterations=donor.outer_iterations,
            )
            fresh = generate_taskset(random.Random(seed), base, 0.45)
            hinted = analyze_taskset(fresh, base, config, warm_hint=hint)
            cold = analyze_taskset(
                generate_taskset(random.Random(seed), base, 0.45),
                base,
                config,
            )
            # The two runs analyse equal-but-distinct task objects, so
            # compare by priority (task equality is identity-based).
            assert hinted.schedulable == cold.schedulable
            assert hinted.outer_iterations == cold.outer_iterations
            assert {
                task.priority: value
                for task, value in hinted.response_times.items()
            } == {
                task.priority: value
                for task, value in cold.response_times.items()
            }


class TestDominanceSkipsAreInvisible:
    """Skipped analyses report the verdict brute force would have."""

    #: Low utilisations exercise the loosest-first success-skip order,
    #: high ones the tightest-first failure-skip order (see
    #: ``_SUCCESS_ORDER_UTILIZATION`` in repro.experiments.runner).
    @pytest.mark.parametrize("utilization", [0.3, 0.45, 0.6, 0.8])
    def test_verdicts_match_brute_force(self, utilization):
        base = default_platform()
        variants = standard_variants(True)
        generation = GenerationConfig()
        for i in range(6):
            seed = _sample_seed(2020, int(utilization * 100), i)
            outcome = evaluate_sample(
                base, utilization, variants, generation, seed
            )
            brute_set = generate_taskset(
                random.Random(seed), base, utilization, generation
            )
            brute = tuple(
                check_schedulability(
                    brute_set,
                    base.with_bus_policy(variant.policy),
                    variant.analysis,
                ).schedulable
                for variant in variants
            )
            assert outcome.verdicts == brute


def _lockstep_snapshot(result):
    """Object-independent projection of a WcrtResult (Task compares by id)."""
    return (
        result.schedulable,
        result.outer_iterations,
        None if result.failed_task is None else result.failed_task.priority,
        {task.priority: r for task, r in result.response_times.items()},
    )


class TestLockstepIsInvisible:
    """The lockstep batch engine vs the sequential scalar path, bit for bit.

    The edge-case tests live in ``tests/test_lockstep.py``; here the broad
    randomized grid pins the equivalence across utilisations, bus
    policies, and the numpy-absent pure-Python fold.
    """

    @pytest.mark.parametrize("utilization", [0.15, 0.35, 0.5, 0.65, 0.85])
    def test_batch_matches_scalar_sequence(self, utilization):
        from repro.analysis.lockstep import analyze_taskset_batch

        base = default_platform()
        for policy in (BusPolicy.FP, BusPolicy.TDMA, BusPolicy.PERFECT):
            platform = base.with_bus_policy(policy)

            def fresh():
                return [
                    generate_taskset(random.Random(seed), base, utilization)
                    for seed in range(5)
                ]

            batch = analyze_taskset_batch(
                fresh(), platform, AnalysisConfig(lockstep_kernel=True)
            )
            scalar_config = AnalysisConfig(lockstep_kernel=False)
            for outcome, taskset in zip(batch, fresh()):
                assert outcome.ok
                reference = analyze_taskset(taskset, platform, scalar_config)
                assert _lockstep_snapshot(outcome.result) == _lockstep_snapshot(
                    reference
                )

    @pytest.mark.parametrize("utilization", [0.35, 0.65])
    def test_numpy_absent_fold_identical(self, utilization, monkeypatch):
        from repro.analysis import lockstep as lockstep_mod
        from repro.analysis.lockstep import analyze_taskset_batch

        monkeypatch.setattr(lockstep_mod, "_np", None)
        monkeypatch.setattr(interference_mod, "_ARRAY_KERNEL_WARNED", True)
        base = default_platform()
        perf = PerfCounters()
        batch = analyze_taskset_batch(
            [
                generate_taskset(random.Random(seed), base, utilization)
                for seed in range(4)
            ],
            base,
            AnalysisConfig(lockstep_kernel=True),
            perf=perf,
        )
        assert perf.array_kernel_unavailable == 1
        scalar_config = AnalysisConfig(lockstep_kernel=False)
        for outcome, seed in zip(batch, range(4)):
            assert outcome.ok
            reference = analyze_taskset(
                generate_taskset(random.Random(seed), base, utilization),
                base,
                scalar_config,
            )
            assert _lockstep_snapshot(outcome.result) == _lockstep_snapshot(
                reference
            )

    @pytest.mark.parametrize("utilization", [0.3, 0.6])
    def test_batch_worker_path_matches_per_item_path(self, utilization):
        from repro.experiments.stateplane import reset_resident_plane
        from repro.experiments.supervisor import WorkItem
        from repro.experiments.runner import evaluate_items_batch, evaluate_sample

        base = default_platform()
        variants = standard_variants(True)
        generation = GenerationConfig()
        items = [
            WorkItem(0, i, utilization, _sample_seed(55, 0, i))
            for i in range(6)
        ]
        reset_resident_plane()
        results, _perf = evaluate_items_batch(
            base, variants, generation, [(item, 0) for item in items]
        )
        reset_resident_plane()
        for item, result in zip(items, results):
            assert result[0] == "ok"
            _tag, key, weight, verdicts = result
            assert key == item.key
            outcome = evaluate_sample(
                base, utilization, variants, generation, item.seed
            )
            assert verdicts == outcome.verdicts
            assert weight == outcome.weight
        reset_resident_plane()


class TestResidentPlaneIsInvisible:
    """Worker-resident state (capacity on vs 0) never changes outcomes."""

    def test_sweep_outcomes_identical_with_and_without_residency(
        self, monkeypatch
    ):
        from repro.experiments.stateplane import (
            STATE_PLANE_CAP_ENV,
            reset_resident_plane,
        )

        settings = SweepSettings(
            samples=6, seed=13, utilizations=(0.3, 0.5, 0.7), jobs=1
        )
        variants = standard_variants(False)[:2]
        monkeypatch.setenv(STATE_PLANE_CAP_ENV, "0")
        reset_resident_plane()
        without = run_curve(default_platform(), variants, settings)
        monkeypatch.delenv(STATE_PLANE_CAP_ENV)
        reset_resident_plane()
        with_plane = run_curve(default_platform(), variants, settings)
        reset_resident_plane()
        assert dict(without) == dict(with_plane)
        assert not without.failures and not with_plane.failures

    def test_canonical_replay_matches_fresh_analysis(self):
        from repro.experiments.stateplane import StatePlane

        base = default_platform()
        plane = StatePlane(capacity=4)
        config = AnalysisConfig(warm_start=True)
        for seed in range(4):
            def build(seed=seed):
                return generate_taskset(random.Random(seed), base, 0.4)

            fresh = analyze_taskset(build(), base, config)
            resident = plane.canonical(("case", seed), build)
            cold = analyze_taskset(resident, base, config)
            warm = analyze_taskset(
                plane.canonical(("case", seed), build), base, config
            )
            assert _lockstep_snapshot(cold) == _lockstep_snapshot(fresh)
            assert _lockstep_snapshot(warm) == _lockstep_snapshot(fresh)
            if fresh.schedulable:
                assert warm.perf.warm_starts == 1
