"""Differential correctness tests of the analysis-kernel optimisations.

Three optimisations must each be an *invisible* one — for every task set,
platform and approach combination they have to return results identical to
their reference path (same verdict, same per-task response times, same
iteration counts):

* the epoch-keyed memoization of the interference terms (see
  :class:`repro.businterference.context.AnalysisContext`) versus
  ``AnalysisConfig(memoization=False)``;
* the packed-bitmask cache-set kernel (see
  :class:`repro.model.interference.InterferenceTable`) versus the retained
  ``frozenset`` algebra (``AnalysisConfig(bitset_kernel=False)``);
* the warm-started fixed point (re-verifying a previously converged map)
  versus a cold analysis of a fresh task-set object.

This file pins all three down over broad randomized samples; the fuzzing
counterparts are the ``memo-identity`` / ``bitset-identity`` /
``warm-start-identity`` oracles of :mod:`repro.verify.oracles`.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import analyze_taskset
from repro.budget import Budget
from repro.crpd.approaches import CrpdApproach
from repro.experiments.config import default_platform
from repro.generation.taskset_gen import generate_taskset
from repro.model.platform import BusPolicy
from repro.persistence.cpro import CproApproach

#: Seeds x utilisations: 60 distinct random task sets, spanning trivially
#: schedulable, borderline and hopeless regions of the sweep.
SAMPLE_GRID = tuple(
    (seed, utilization)
    for seed in range(12)
    for utilization in (0.15, 0.35, 0.5, 0.65, 0.85)
)


def _compare(taskset, platform, config):
    memoized = analyze_taskset(taskset, platform, config)
    reference = analyze_taskset(
        taskset, platform, replace(config, memoization=False)
    )
    # WcrtResult equality covers verdict, per-task response times, failing
    # task and outer iteration count (perf counters are excluded).
    assert memoized == reference
    return memoized


class TestMemoizationIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID)
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        taskset = generate_taskset(random.Random(seed), base, utilization)
        for policy in BusPolicy:
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(4):
            taskset = generate_taskset(
                random.Random(100 + seed), base, 0.4 + 0.1 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                _compare(taskset, base.with_bus_policy(policy), config)

    @pytest.mark.parametrize("policy", list(BusPolicy))
    def test_baseline_analysis_identical(self, policy):
        base = default_platform()
        config = AnalysisConfig(persistence=False)
        for seed in range(8):
            taskset = generate_taskset(
                random.Random(200 + seed), base, 0.3 + 0.08 * seed
            )
            _compare(taskset, base.with_bus_policy(policy), config)

    def test_persistence_in_low_identical(self):
        base = default_platform()
        config = AnalysisConfig(persistence_in_low=True)
        for seed in range(6):
            taskset = generate_taskset(
                random.Random(300 + seed), base, 0.35 + 0.1 * seed
            )
            _compare(taskset, base.with_bus_policy(BusPolicy.FP), config)

    def test_reanalysis_of_same_taskset_is_stable(self):
        # Shared derived tables must not leak state between configurations
        # analysing the same task set object.
        base = default_platform()
        taskset = generate_taskset(random.Random(42), base, 0.5)
        first = [
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())
            for policy in BusPolicy
        ]
        second = [
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())
            for policy in BusPolicy
        ]
        assert first == second


def _compare_bitset(taskset, platform, config):
    bitset = analyze_taskset(
        taskset, platform, replace(config, bitset_kernel=True)
    )
    reference = analyze_taskset(
        taskset, platform, replace(config, bitset_kernel=False)
    )
    assert bitset == reference
    return bitset


class TestBitsetKernelIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::3])
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        taskset = generate_taskset(random.Random(seed), base, utilization)
        for policy in BusPolicy:
            _compare_bitset(
                taskset, base.with_bus_policy(policy), AnalysisConfig()
            )

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(3):
            taskset = generate_taskset(
                random.Random(400 + seed), base, 0.35 + 0.15 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                _compare_bitset(taskset, base.with_bus_policy(policy), config)

    def test_reference_path_never_builds_a_table(self):
        base = default_platform()
        taskset = generate_taskset(random.Random(500), base, 0.4)
        result = analyze_taskset(
            taskset, base, AnalysisConfig(bitset_kernel=False)
        )
        assert result.perf.bitset_table_builds == 0
        result = analyze_taskset(
            taskset, base, AnalysisConfig(bitset_kernel=True)
        )
        assert result.perf.bitset_table_builds == 1


class TestBudgetIsInvisible:
    """A budget generous enough to finish must never perturb a result.

    Ticks only count and compare (see :mod:`repro.budget`), so a
    completed analysis under an active budget has to be bit-identical to
    the budget-less run — same verdict, same per-task bounds, same outer
    iteration count.  The abort-side properties (partial results, cache
    soundness after aborts) live in ``tests/test_budget.py``.
    """

    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::3])
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        config = AnalysisConfig()
        for policy in BusPolicy:
            platform = base.with_bus_policy(policy)
            taskset = generate_taskset(random.Random(seed), base, utilization)
            plain = analyze_taskset(taskset, platform, config)
            budget = Budget(max_iterations=10**9, wall_seconds=3600.0)
            budgeted = analyze_taskset(
                taskset, platform, config, budget=budget
            )
            assert budgeted == plain
            assert budget.iterations > 0

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(3):
            taskset = generate_taskset(
                random.Random(700 + seed), base, 0.35 + 0.15 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                platform = base.with_bus_policy(policy)
                plain = analyze_taskset(taskset, platform, config)
                budgeted = analyze_taskset(
                    taskset,
                    platform,
                    config,
                    budget=Budget(max_iterations=10**9),
                )
                assert budgeted == plain


class TestWarmStartIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID[::4])
    def test_replay_bit_identical_to_cold(self, seed, utilization):
        base = default_platform()
        config = AnalysisConfig()
        for policy in BusPolicy:
            platform = base.with_bus_policy(policy)
            taskset = generate_taskset(random.Random(seed), base, utilization)
            cold = analyze_taskset(taskset, platform, config)
            warm = analyze_taskset(taskset, platform, config)
            # WcrtResult equality covers verdict, bounds, failing task and
            # the reported outer iteration count (perf is excluded).
            assert warm == cold
            if cold.schedulable:
                assert warm.perf.warm_starts == 1
                assert warm.perf.outer_iterations == 1
                assert (
                    warm.perf.warm_start_iterations_saved
                    == cold.outer_iterations - 1
                )
            else:
                # Unschedulable results must never seed a warm start.
                assert warm.perf.warm_starts == 0

    def test_seeds_are_config_keyed(self):
        # A seed recorded under one config must not leak into analyses
        # under another: every distinct config gets its own cold run.
        base = default_platform()
        taskset = generate_taskset(random.Random(600), base, 0.4)
        aware = AnalysisConfig(persistence=True)
        oblivious = AnalysisConfig(persistence=False)
        first = analyze_taskset(taskset, base, aware)
        cross = analyze_taskset(taskset, base, oblivious)
        assert cross.perf.warm_starts == 0
        again = analyze_taskset(taskset, base, oblivious)
        if cross.schedulable:
            assert again.perf.warm_starts == 1
        assert again == cross
        assert analyze_taskset(taskset, base, aware) == first

    def test_disabled_warm_start_always_runs_cold(self):
        base = default_platform()
        config = AnalysisConfig(warm_start=False)
        taskset = generate_taskset(random.Random(601), base, 0.4)
        first = analyze_taskset(taskset, base, config)
        second = analyze_taskset(taskset, base, config)
        assert second == first
        assert second.perf.warm_starts == 0
        assert second.perf.outer_iterations == first.perf.outer_iterations
