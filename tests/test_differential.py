"""Differential correctness test of the memoized analysis kernel.

The epoch-keyed memoization of the interference terms (see
:class:`repro.businterference.context.AnalysisContext`) must be an
invisible optimisation: for every task set, platform and approach
combination the memoized kernel has to return results identical to the
un-memoized reference path (``AnalysisConfig(memoization=False)``) — same
verdict, same per-task response times, same iteration counts.  This file
pins that down over a broad randomized sample.
"""

import random
from dataclasses import replace

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import analyze_taskset
from repro.crpd.approaches import CrpdApproach
from repro.experiments.config import default_platform
from repro.generation.taskset_gen import generate_taskset
from repro.model.platform import BusPolicy
from repro.persistence.cpro import CproApproach

#: Seeds x utilisations: 60 distinct random task sets, spanning trivially
#: schedulable, borderline and hopeless regions of the sweep.
SAMPLE_GRID = tuple(
    (seed, utilization)
    for seed in range(12)
    for utilization in (0.15, 0.35, 0.5, 0.65, 0.85)
)


def _compare(taskset, platform, config):
    memoized = analyze_taskset(taskset, platform, config)
    reference = analyze_taskset(
        taskset, platform, replace(config, memoization=False)
    )
    # WcrtResult equality covers verdict, per-task response times, failing
    # task and outer iteration count (perf counters are excluded).
    assert memoized == reference
    return memoized


class TestMemoizationIsInvisible:
    @pytest.mark.parametrize("seed,utilization", SAMPLE_GRID)
    def test_default_analysis_identical(self, seed, utilization):
        base = default_platform()
        taskset = generate_taskset(random.Random(seed), base, utilization)
        for policy in BusPolicy:
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())

    @pytest.mark.parametrize("crpd", list(CrpdApproach))
    @pytest.mark.parametrize("cpro", list(CproApproach))
    def test_every_crpd_cpro_combination_identical(self, crpd, cpro):
        base = default_platform()
        config = AnalysisConfig(crpd_approach=crpd, cpro_approach=cpro)
        for seed in range(4):
            taskset = generate_taskset(
                random.Random(100 + seed), base, 0.4 + 0.1 * seed
            )
            for policy in (BusPolicy.FP, BusPolicy.RR):
                _compare(taskset, base.with_bus_policy(policy), config)

    @pytest.mark.parametrize("policy", list(BusPolicy))
    def test_baseline_analysis_identical(self, policy):
        base = default_platform()
        config = AnalysisConfig(persistence=False)
        for seed in range(8):
            taskset = generate_taskset(
                random.Random(200 + seed), base, 0.3 + 0.08 * seed
            )
            _compare(taskset, base.with_bus_policy(policy), config)

    def test_persistence_in_low_identical(self):
        base = default_platform()
        config = AnalysisConfig(persistence_in_low=True)
        for seed in range(6):
            taskset = generate_taskset(
                random.Random(300 + seed), base, 0.35 + 0.1 * seed
            )
            _compare(taskset, base.with_bus_policy(BusPolicy.FP), config)

    def test_reanalysis_of_same_taskset_is_stable(self):
        # Shared derived tables must not leak state between configurations
        # analysing the same task set object.
        base = default_platform()
        taskset = generate_taskset(random.Random(42), base, 0.5)
        first = [
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())
            for policy in BusPolicy
        ]
        second = [
            _compare(taskset, base.with_bus_policy(policy), AnalysisConfig())
            for policy in BusPolicy
        ]
        assert first == second
