"""Tests of the worker-resident sweep state plane."""

import random

import pytest

from repro.experiments.config import default_platform
from repro.experiments.stateplane import (
    DEFAULT_CAPACITY,
    STATE_PLANE_CAP_ENV,
    StatePlane,
    reset_resident_plane,
    resident_plane,
)
from repro.generation.taskset_gen import GenerationConfig, generate_taskset
from repro.perf import PerfCounters


@pytest.fixture(autouse=True)
def _fresh_plane():
    reset_resident_plane()
    yield
    reset_resident_plane()


class TestTasksetResidency:
    def test_hit_returns_the_same_object(self):
        plane = StatePlane(capacity=8)
        platform = default_platform()
        generation = GenerationConfig()
        perf = PerfCounters()
        first = plane.taskset(platform, generation, 0.4, 7, perf)
        again = plane.taskset(platform, generation, 0.4, 7, perf)
        assert again is first
        assert perf.resident_table_misses == 1
        assert perf.resident_table_hits == 1

    def test_miss_generates_the_exact_fresh_value(self):
        plane = StatePlane(capacity=8)
        platform = default_platform()
        generation = GenerationConfig()
        resident = plane.taskset(platform, generation, 0.5, 11)
        fresh = generate_taskset(random.Random(11), platform, 0.5, generation)
        assert [t.priority for t in resident] == [t.priority for t in fresh]
        assert [int(t.pd) for t in resident] == [int(t.pd) for t in fresh]
        assert [t.period for t in resident] == [t.period for t in fresh]

    def test_distinct_keys_do_not_collide(self):
        plane = StatePlane(capacity=8)
        platform = default_platform()
        generation = GenerationConfig()
        a = plane.taskset(platform, generation, 0.4, 7)
        b = plane.taskset(platform, generation, 0.5, 7)
        c = plane.taskset(platform, generation, 0.4, 8)
        assert a is not b and a is not c

    def test_lru_evicts_oldest(self):
        plane = StatePlane(capacity=2)
        platform = default_platform()
        generation = GenerationConfig()
        first = plane.taskset(platform, generation, 0.4, 1)
        plane.taskset(platform, generation, 0.4, 2)
        # Touch the first so seed 2 is the LRU victim of the next insert.
        assert plane.taskset(platform, generation, 0.4, 1) is first
        plane.taskset(platform, generation, 0.4, 3)
        perf = PerfCounters()
        assert plane.taskset(platform, generation, 0.4, 1, perf) is first
        plane.taskset(platform, generation, 0.4, 2, perf)
        assert perf.resident_table_hits == 1  # seed 1 survived
        assert perf.resident_table_misses == 1  # seed 2 was evicted


class TestChains:
    def test_chain_is_resident_and_mutable(self):
        plane = StatePlane(capacity=8)
        chain = plane.chain(("scope",), 3)
        chain[0] = "hint"
        assert plane.chain(("scope",), 3) is chain
        assert plane.chain(("scope",), 4) is not chain
        assert plane.chain(("other",), 3) is not chain


class TestCanonical:
    def test_builder_runs_once_per_key(self):
        plane = StatePlane(capacity=8)
        calls = []

        def build():
            calls.append(1)
            return object()

        perf = PerfCounters()
        first = plane.canonical("digest", build, perf)
        second = plane.canonical("digest", build, perf)
        assert second is first
        assert len(calls) == 1
        assert (perf.resident_table_misses, perf.resident_table_hits) == (1, 1)


class TestCapacity:
    def test_zero_capacity_disables_residency(self):
        plane = StatePlane(capacity=0)
        platform = default_platform()
        generation = GenerationConfig()
        perf = PerfCounters()
        plane.taskset(platform, generation, 0.4, 5, perf)
        plane.taskset(platform, generation, 0.4, 5, perf)
        assert perf.resident_table_hits == 0
        assert perf.resident_table_misses == 2

    def test_env_capacity(self, monkeypatch):
        monkeypatch.setenv(STATE_PLANE_CAP_ENV, "3")
        assert StatePlane().capacity == 3
        monkeypatch.setenv(STATE_PLANE_CAP_ENV, "0")
        assert StatePlane().capacity == 0
        monkeypatch.setenv(STATE_PLANE_CAP_ENV, "-4")
        assert StatePlane().capacity == 0
        monkeypatch.setenv(STATE_PLANE_CAP_ENV, "not-a-number")
        assert StatePlane().capacity == DEFAULT_CAPACITY
        monkeypatch.delenv(STATE_PLANE_CAP_ENV)
        assert StatePlane().capacity == DEFAULT_CAPACITY

    def test_clear_drops_everything(self):
        plane = StatePlane(capacity=8)
        platform = default_platform()
        generation = GenerationConfig()
        resident = plane.taskset(platform, generation, 0.4, 5)
        plane.chain("scope", 1)["x"] = 1
        plane.canonical("key", lambda: "doc")
        plane.clear()
        perf = PerfCounters()
        assert plane.taskset(platform, generation, 0.4, 5, perf) is not resident
        assert perf.resident_table_misses == 1
        assert plane.chain("scope", 1) == {}


class TestResidentSingleton:
    def test_process_global_plane_is_shared_and_resettable(self):
        plane = resident_plane()
        assert resident_plane() is plane
        reset_resident_plane()
        assert resident_plane() is not plane

    def test_reset_rereads_capacity(self, monkeypatch):
        monkeypatch.setenv(STATE_PLANE_CAP_ENV, "5")
        reset_resident_plane()
        assert resident_plane().capacity == 5
