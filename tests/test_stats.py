"""Unit tests for the Wilson-interval statistics helpers."""

import pytest

from repro.errors import AnalysisError
from repro.experiments.config import SweepSettings, default_platform, standard_variants
from repro.experiments.runner import run_curve, schedulability_ratios
from repro.experiments.stats import ratio_confidence_intervals, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        for successes, trials in ((0, 10), (3, 10), (10, 10), (50, 100)):
            low, high = wilson_interval(successes, trials)
            assert low <= successes / trials <= high

    def test_bounds_within_unit_interval(self):
        low, high = wilson_interval(0, 5)
        assert low == 0.0
        assert high < 1.0
        low, high = wilson_interval(5, 5)
        assert low > 0.0
        assert high == 1.0

    def test_narrower_with_more_samples(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_wider_with_higher_confidence(self):
        c90 = wilson_interval(30, 100, confidence=0.90)
        c99 = wilson_interval(30, 100, confidence=0.99)
        assert c99[1] - c99[0] > c90[1] - c90[0]

    def test_symmetric_in_successes(self):
        low_a, high_a = wilson_interval(20, 100)
        low_b, high_b = wilson_interval(80, 100)
        assert low_a == pytest.approx(1 - high_b, abs=1e-9)
        assert high_a == pytest.approx(1 - low_b, abs=1e-9)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(1, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(-1, 10)
        with pytest.raises(AnalysisError):
            wilson_interval(11, 10)
        with pytest.raises(AnalysisError):
            wilson_interval(5, 10, confidence=0.5)


class TestCurveIntervals:
    def test_intervals_bracket_ratios(self):
        settings = SweepSettings(samples=6, seed=3, utilizations=(0.3, 0.5))
        platform = default_platform()
        variants = standard_variants(include_perfect=False)[:2]
        outcomes = run_curve(platform, variants, settings)
        ratios = schedulability_ratios(outcomes, variants)
        intervals = ratio_confidence_intervals(
            outcomes, [v.label for v in variants]
        )
        for label in intervals:
            for (low, high), ratio in zip(intervals[label], ratios[label]):
                assert low <= ratio <= high
