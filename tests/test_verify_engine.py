"""Tests for the soundness-fuzzing engine, shrinker and fault injection.

The headline acceptance property lives here: on a healthy library a seeded
fuzz campaign passes every oracle, and with a deliberately injected
unsoundness (dropping the ``|PCB|`` term from Eq. 10) the campaign both
*catches* the bug and *shrinks* it to a reproducer of at most 3 tasks.
"""

import random

import pytest

from repro.errors import AnalysisError
from repro.model.platform import BusPolicy
from repro.perf import PerfCounters
from repro.persistence.demand import FAULTS, multi_job_demand
from repro.verify.cases import CASE_KINDS
from repro.verify.cli import main, parse_budget
from repro.verify.corpus import replay_corpus
from repro.verify.engine import _kind_schedule, fuzz
from repro.verify.faults import fault_names, inject_fault
from repro.verify.generators import generate_case
from repro.verify.oracles import (
    applicable_oracles,
    get_oracle,
    oracle_names,
    run_oracles,
)
from repro.verify.shrink import shrink_case


class TestFuzzCampaign:
    def test_clean_campaign_passes(self):
        report = fuzz(max_cases=16, seed=0)
        assert report.passed, [v.messages for v in report.violations]
        assert report.cases == 16
        assert report.checks > report.cases  # several oracles per case
        assert set(report.per_kind) == set(CASE_KINDS)

    def test_campaign_is_deterministic(self):
        first = fuzz(max_cases=6, seed=7)
        second = fuzz(max_cases=6, seed=7)
        assert first.per_kind == second.per_kind
        assert first.perf.oracle_checks == second.perf.oracle_checks
        assert first.passed and second.passed

    def test_perf_counters_accumulate(self):
        perf = PerfCounters()
        report = fuzz(max_cases=4, seed=1, perf=perf)
        assert perf.verify_cases == 4
        assert perf.oracle_checks == report.perf.oracle_checks
        assert "verify cases" in perf.render()

    def test_budget_stops_generation(self):
        report = fuzz(budget=0.5, seed=3)
        assert report.elapsed < 30.0
        assert report.cases >= 1

    def test_kind_filter(self):
        report = fuzz(max_cases=5, seed=2, kinds=("demand",))
        assert report.per_kind == {"demand": 5}

    def test_invalid_arguments_rejected(self):
        with pytest.raises(AnalysisError):
            fuzz(max_cases=0)
        with pytest.raises(AnalysisError):
            fuzz(budget=-1.0)
        with pytest.raises(AnalysisError):
            fuzz(max_cases=1, kinds=("nonsense",))
        with pytest.raises(AnalysisError):
            fuzz(max_cases=1, policies=())

    def test_kind_schedule_weights_tasksets(self):
        schedule = _kind_schedule(CASE_KINDS)
        assert schedule.count("taskset") == 2
        assert schedule.count("scenario") == 1


class TestOracleRegistry:
    def test_expected_oracles_registered(self):
        names = oracle_names()
        for expected in (
            "memo-identity",
            "persistence-tightens",
            "perfect-dominance",
            "mono-period-shrink",
            "mono-mdr-raise",
            "fixed-point-sanity",
            "eq10-demand",
            "sim-vs-wcrt",
        ):
            assert expected in names

    def test_every_kind_has_oracles(self):
        for kind in CASE_KINDS:
            assert applicable_oracles(kind)

    def test_run_oracles_rejects_kind_mismatch(self):
        case = generate_case("demand", random.Random(0))
        with pytest.raises(ValueError):
            run_oracles(case, names=["memo-identity"])

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError):
            get_oracle("no-such-oracle")


class TestFaultInjection:
    def test_fault_registry_and_restore(self):
        assert "drop-pcb-term" in fault_names()
        assert not FAULTS.drop_pcb_term
        with inject_fault("drop-pcb-term"):
            assert FAULTS.drop_pcb_term
        assert not FAULTS.drop_pcb_term
        with pytest.raises(AnalysisError):
            with inject_fault("no-such-fault"):
                pass

    def test_fault_actually_drops_pcb_term(self):
        from repro.model.task import Task

        task = Task(
            name="t",
            pd=10,
            md=20,
            md_r=5,
            period=100,
            deadline=100,
            priority=1,
            ecbs=frozenset(range(8)),
            pcbs=frozenset(range(8)),
        )
        assert multi_job_demand(task, 2) == 2 * 5 + 8
        with inject_fault("drop-pcb-term"):
            assert multi_job_demand(task, 2) == 2 * 5

    def test_injected_unsoundness_is_caught_and_shrunk(self, tmp_path):
        """The acceptance property: Eq. 10 without |PCB| is unsound, the
        campaign catches it, and the reproducer has at most 3 tasks."""
        corpus = tmp_path / "corpus"
        with inject_fault("drop-pcb-term"):
            report = fuzz(
                max_cases=8,
                seed=0,
                corpus_dir=corpus,
                policies=(BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA),
            )
        assert not report.passed
        oracles_fired = {v.oracle for v in report.violations}
        assert "eq10-demand" in oracles_fired
        for violation in report.violations:
            assert violation.shrunk_case.task_count <= 3
            assert violation.corpus_path is not None
            assert violation.corpus_path.exists()
        # Once the "bug" is fixed (fault off), the reproducers replay clean
        # — exactly the corpus regression-test workflow.
        replay = replay_corpus(corpus)
        assert replay.passed, replay.failures
        # Content-addressed names deduplicate identical shrunk reproducers.
        assert 1 <= replay.entries <= len(report.violations)

    def test_shrinker_minimises_demand_case(self):
        oracle = get_oracle("eq10-demand")
        case = generate_case("demand", random.Random(4))
        case = type(case)(
            benchmark="bs", n_jobs=4, num_sets=case.num_sets
        )
        with inject_fault("drop-pcb-term"):
            result = shrink_case(case, oracle)
            assert result.messages
            assert result.case.n_jobs == 1
        assert result.steps > 0


class TestCli:
    def test_parse_budget(self):
        assert parse_budget("30") == 30.0
        assert parse_budget("45s") == 45.0
        assert parse_budget("2m") == 120.0
        with pytest.raises(AnalysisError):
            parse_budget("soon")
        with pytest.raises(AnalysisError):
            parse_budget("0s")

    def test_fuzz_command_passes(self, capsys):
        code = main(["fuzz", "--cases", "4", "--seed", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify fuzz: PASS" in out

    def test_fuzz_command_profile(self, capsys):
        code = main(["fuzz", "--cases", "2", "--seed", "1", "--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Performance profile:" in out
        assert "oracle " in out

    def test_fuzz_command_catches_injected_fault(self, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--cases",
                "4",
                "--seed",
                "0",
                "--kinds",
                "demand",
                "--inject",
                "drop-pcb-term",
                "--corpus",
                str(tmp_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "VIOLATION [eq10-demand]" in captured.out
        assert not FAULTS.drop_pcb_term  # flag restored after the campaign

    def test_replay_command(self, capsys):
        code = main(["replay", "--corpus", "tests/corpus"])
        out = capsys.readouterr().out
        assert code == 0
        assert "corpus replay: PASS" in out

    def test_replay_missing_corpus_is_empty_pass(self, tmp_path, capsys):
        code = main(["replay", "--corpus", str(tmp_path / "nope")])
        assert code == 0
        assert "0 entries" in capsys.readouterr().out

    def test_bad_policy_is_a_cli_error(self, capsys):
        code = main(["fuzz", "--cases", "1", "--policies", "warp-drive"])
        assert code == 2
        assert "unknown bus policy" in capsys.readouterr().err
