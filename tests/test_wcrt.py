"""Unit tests for the WCRT fixed point (Eq. 19) and its outer loop."""

import pytest

from repro.analysis.config import AnalysisConfig, BASELINE, PERSISTENCE_AWARE
from repro.analysis.wcrt import analyze_taskset
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet


def make_task(name, priority, core, pd=50, md=5, md_r=None, period=1000,
              deadline=None, ecbs=(), ucbs=(), pcbs=()):
    return Task(
        name=name,
        pd=pd,
        md=md,
        md_r=md_r,
        period=period,
        deadline=deadline if deadline is not None else period,
        priority=priority,
        core=core,
        ecbs=frozenset(ecbs),
        ucbs=frozenset(ucbs),
        pcbs=frozenset(pcbs),
    )


def single_task_platform(policy=BusPolicy.FP, cores=1):
    return Platform(num_cores=cores, d_mem=10, bus_policy=policy)


class TestSingleTask:
    def test_isolated_wcrt_is_exact(self):
        task = make_task("solo", 1, 0, pd=50, md=5)
        result = analyze_taskset(TaskSet([task]), single_task_platform())
        assert result.schedulable
        # Alone in the system: R = PD + MD*d_mem, no blocking term.
        assert result.response_time(task) == 50 + 5 * 10

    def test_tight_deadline_fails(self):
        task = make_task("solo", 1, 0, pd=50, md=5, period=1000, deadline=99)
        result = analyze_taskset(TaskSet([task]), single_task_platform())
        assert not result.schedulable
        assert result.failed_task is task

    def test_deadline_equal_to_wcrt_passes(self):
        task = make_task("solo", 1, 0, pd=50, md=5, period=1000, deadline=100)
        result = analyze_taskset(TaskSet([task]), single_task_platform())
        assert result.schedulable


class TestSameCoreInterference:
    def test_classic_response_time_with_memory(self):
        # Two tasks, one core, perfect bus: the textbook recurrence.
        t1 = make_task("hp", 1, 0, pd=20, md=2, period=100)
        t2 = make_task("lp", 2, 0, pd=30, md=3, period=300)
        platform = single_task_platform(BusPolicy.PERFECT)
        result = analyze_taskset(TaskSet([t1, t2]), platform)
        assert result.schedulable
        assert result.response_time(t1) == 20 + 2 * 10
        # R2 = 30 + ceil(R2/100)*20 + (3 + ceil(R2/100)*2)*10:
        # try R2 = 30 + 20 + 50 = 100 -> ceil(100/100)=1 -> 100. Fixed point.
        assert result.response_time(t2) == 100

    def test_crpd_included(self):
        t1 = make_task("hp", 1, 0, pd=20, md=2, period=100,
                       ecbs={0, 1, 2, 3})
        t2 = make_task("lp", 2, 0, pd=30, md=3, period=300,
                       ecbs={0, 1}, ucbs={0, 1})
        platform = single_task_platform(BusPolicy.PERFECT)
        result = analyze_taskset(TaskSet([t1, t2]), platform)
        # gamma_{2,1} = |UCB_2 ∩ ECB_1| = 2 extra accesses per preemption.
        # R2 = 30 + ceil(R2/100)*20 + (3 + ceil(R2/100)*(2+2))*10 has its
        # least fixed point at 180 (two hp jobs, each charged CRPD).
        assert result.response_time(t2) == 180
        # Without the UCB overlap the fixed point drops back to 100.
        no_overlap = make_task("lp", 2, 0, pd=30, md=3, period=300,
                               ecbs={8, 9}, ucbs={8, 9})
        result2 = analyze_taskset(TaskSet([t1, no_overlap]), platform)
        assert result2.response_time(no_overlap) == 100

    def test_persistence_tightens_response_time(self):
        t1 = make_task("hp", 1, 0, pd=10, md=5, md_r=1, period=80,
                       ecbs=frozenset(range(5)), pcbs=frozenset(range(5)))
        t2 = make_task("lp", 2, 0, pd=100, md=5, period=2000)
        platform = single_task_platform(BusPolicy.PERFECT)
        taskset = TaskSet([t1, t2])
        aware = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)
        baseline = analyze_taskset(taskset, platform, BASELINE)
        assert aware.schedulable and baseline.schedulable
        assert aware.response_time(t2) < baseline.response_time(t2)


class TestCrossCoreInterference:
    def test_remote_traffic_delays_on_fp_bus(self):
        t1 = make_task("local", 1, 0, pd=50, md=5, period=1000)
        t2 = make_task("remote", 2, 1, pd=50, md=20, period=300)
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        both = analyze_taskset(TaskSet([t1, t2]), platform)
        alone = analyze_taskset(TaskSet([t1]), platform)
        assert both.schedulable and alone.schedulable
        # t2's lower-priority accesses block t1 (the min(BAS, BAO_low) term
        # of Eq. 7), so t1's WCRT grows but by at most one blocking access
        # per own access.
        assert both.response_time(t1) > alone.response_time(t1)
        # t1's higher-priority traffic delays the remote t2.
        t2_solo = make_task("remote", 1, 1, pd=50, md=20, period=300)
        solo = analyze_taskset(TaskSet([t2_solo]), platform)
        assert both.response_time(t2) > solo.response_time(t2_solo)

    def test_outer_loop_reaches_fixed_point(self):
        tasks = [
            make_task(f"t{i}", i, i % 2, pd=30, md=4, period=500 + 100 * i)
            for i in range(1, 7)
        ]
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        result = analyze_taskset(TaskSet(tasks), platform)
        assert result.schedulable
        assert result.outer_iterations >= 1


class TestUnschedulableDetection:
    def test_overloaded_core_fails(self):
        t1 = make_task("a", 1, 0, pd=600, md=10, period=1000)
        t2 = make_task("b", 2, 0, pd=600, md=10, period=1000)
        platform = single_task_platform(BusPolicy.PERFECT)
        result = analyze_taskset(TaskSet([t1, t2]), platform)
        assert not result.schedulable
        assert result.failed_task is t2

    def test_failed_task_estimate_exceeds_deadline(self):
        t1 = make_task("a", 1, 0, pd=600, md=10, period=1000)
        t2 = make_task("b", 2, 0, pd=600, md=10, period=1000)
        result = analyze_taskset(TaskSet([t1, t2]), single_task_platform(BusPolicy.PERFECT))
        assert result.response_times[t2] > t2.deadline

    def test_isolated_overrun_shortcircuits(self):
        task = make_task("fat", 1, 0, pd=50, md=500, period=1000, deadline=1000)
        result = analyze_taskset(TaskSet([task]), single_task_platform())
        assert not result.schedulable
        assert result.outer_iterations == 0


class TestBoundsMonotonicity:
    def test_persistence_wcrt_never_worse(self):
        tasks = [
            make_task(
                f"t{i}",
                i,
                i % 2,
                pd=40,
                md=12,
                md_r=3,
                period=600 + 150 * i,
                ecbs=frozenset(range(12)),
                ucbs=frozenset(range(6)),
                pcbs=frozenset(range(6, 12)),
            )
            for i in range(1, 7)
        ]
        taskset = TaskSet(tasks)
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.RR)
        aware = analyze_taskset(taskset, platform, PERSISTENCE_AWARE)
        baseline = analyze_taskset(taskset, platform, BASELINE)
        if aware.schedulable and baseline.schedulable:
            for task in taskset:
                assert aware.response_time(task) <= baseline.response_time(task)
        else:
            # Persistence awareness can only help.
            assert aware.schedulable or not baseline.schedulable

    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            AnalysisConfig(max_outer_iterations=0)
        with pytest.raises(AnalysisError):
            AnalysisConfig(max_inner_iterations=-1)


class TestConfigHelpers:
    def test_with_persistence_toggle(self):
        from repro.analysis.config import PERSISTENCE_AWARE

        toggled = PERSISTENCE_AWARE.with_persistence(False)
        assert toggled.persistence is False
        # Every other knob is preserved.
        assert toggled.crpd_approach is PERSISTENCE_AWARE.crpd_approach
        assert toggled.cpro_approach is PERSISTENCE_AWARE.cpro_approach
        assert PERSISTENCE_AWARE.persistence is True  # original untouched

    def test_paper_configs_differ_only_in_persistence(self):
        from dataclasses import asdict

        from repro.analysis.config import BASELINE, PERSISTENCE_AWARE

        aware = asdict(PERSISTENCE_AWARE)
        base = asdict(BASELINE)
        aware.pop("persistence")
        base.pop("persistence")
        assert aware == base


class TestIterationBudgets:
    def test_inner_budget_exhaustion_raises(self):
        from repro.errors import ConvergenceError

        # A task needing several refinement steps with a budget of one.
        t1 = make_task("hp", 1, 0, pd=20, md=2, period=100)
        t2 = make_task("lp", 2, 0, pd=30, md=3, period=300)
        config = AnalysisConfig(max_inner_iterations=1)
        with pytest.raises(ConvergenceError):
            analyze_taskset(
                TaskSet([t1, t2]), single_task_platform(BusPolicy.PERFECT), config
            )

    def test_outer_budget_exhaustion_is_conservative(self):
        # Cross-core coupling needs a couple of outer rounds; with a budget
        # of one round the analysis must answer "unschedulable" rather than
        # raise or return an unstable fixed point.
        tasks = [
            make_task(f"t{i}", i, i % 2, pd=30, md=8, period=400 + 50 * i)
            for i in range(1, 7)
        ]
        platform = Platform(num_cores=2, d_mem=10, bus_policy=BusPolicy.FP)
        generous = analyze_taskset(TaskSet(tasks), platform)
        strict = analyze_taskset(
            TaskSet(tasks), platform, AnalysisConfig(max_outer_iterations=1)
        )
        if generous.schedulable and generous.outer_iterations > 1:
            assert not strict.schedulable
            assert strict.failed_task is None
        else:
            # Budget was never the binding constraint here; both agree.
            assert strict.schedulable == generous.schedulable
