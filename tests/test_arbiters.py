"""Unit tests for the per-policy BAT bounds (Eq. 7-9)."""

import pytest

from repro.businterference.arbiters import blocking_accesses, total_bus_accesses
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import bao, bao_low, bas
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy, Platform
from repro.model.task import Task, TaskSet


def make_task(name, priority, core, md=6, md_r=2, period=200):
    return Task(
        name=name,
        pd=50,
        md=md,
        md_r=md_r,
        period=period,
        deadline=period,
        priority=priority,
        core=core,
        ecbs=frozenset(range(md)),
        ucbs=frozenset(range(md // 2)),
        pcbs=frozenset(range(md // 2, md)),
    )


@pytest.fixture()
def system():
    t1 = make_task("t1", 1, 0, period=100)
    t2 = make_task("t2", 2, 0, period=400)
    t3 = make_task("t3", 3, 1, period=150)
    t4 = make_task("t4", 4, 1, period=500)
    taskset = TaskSet([t1, t2, t3, t4])
    return taskset, t1, t2, t3, t4


def ctx_for(taskset, policy, **platform_kwargs):
    platform = Platform(num_cores=2, d_mem=10, bus_policy=policy, **platform_kwargs)
    return AnalysisContext(taskset=taskset, platform=platform, persistence=True)


class TestBlocking:
    def test_blocking_only_with_same_core_lower_priority(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.FP)
        assert blocking_accesses(ctx, t1) == 1  # t2 is below t1 on core 0
        assert blocking_accesses(ctx, t2) == 0  # nothing below t2 on core 0
        assert blocking_accesses(ctx, t3) == 1
        assert blocking_accesses(ctx, t4) == 0


class TestFpBat:
    def test_composition(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.FP)
        t = 600
        own = bas(ctx, t2, t)
        higher = bao(ctx, 1, t2, t)
        lower = bao_low(ctx, 1, t2, t)
        expected = own + higher + min(own, lower)  # no +1 for t2
        assert total_bus_accesses(ctx, t2, t) == expected

    def test_lower_priority_traffic_capped_by_own_demand(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.FP)
        t = 600
        own = bas(ctx, t1, t)
        assert total_bus_accesses(ctx, t1, t) <= own + bao(ctx, 1, t1, t) + 1 + own


class TestRrBat:
    def test_remote_capped_by_slots(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.RR, slot_size=1)
        t = 600
        own = bas(ctx, t2, t)
        lowest = taskset.lowest_priority_task
        remote = min(bao(ctx, 1, lowest, t), ctx.platform.slot_size * own)
        assert total_bus_accesses(ctx, t2, t) == own + remote

    def test_slot_size_increases_bound(self, system):
        taskset, t1, t2, t3, t4 = system
        t = 600
        small = ctx_for(taskset, BusPolicy.RR, slot_size=1)
        large = ctx_for(taskset, BusPolicy.RR, slot_size=4)
        assert total_bus_accesses(small, t2, t) <= total_bus_accesses(large, t2, t)

    def test_counts_all_remote_tasks_not_just_hep(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.RR, slot_size=6)
        t = 600
        lowest = taskset.lowest_priority_task
        # With a huge slot cap the remote term equals BAO over ALL tasks on
        # core 1 (priority level n), including tasks below t2's priority.
        assert total_bus_accesses(ctx, t2, t) == bas(ctx, t2, t) + bao(
            ctx, 1, lowest, t
        )


class TestTdmaBat:
    def test_independent_of_remote_demand(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.TDMA)
        t = 600
        # Doubling the remote tasks' demand leaves the TDMA bound unchanged.
        heavy = TaskSet(
            [
                t1,
                t2,
                make_task("t3", 3, 1, md=60, md_r=60, period=150),
                make_task("t4", 4, 1, md=60, md_r=60, period=500),
            ]
        )
        heavy_ctx = ctx_for(heavy, BusPolicy.TDMA)
        assert total_bus_accesses(ctx, t2, t) == total_bus_accesses(heavy_ctx, heavy.tasks[1], t)

    def test_formula(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.TDMA, slot_size=3)
        t = 600
        own = bas(ctx, t2, t)
        wait = (2 - 1) * 3
        assert total_bus_accesses(ctx, t2, t) == own + wait * own

    def test_alignment_safe_variant_is_larger(self, system):
        taskset, t1, t2, t3, t4 = system
        faithful = ctx_for(taskset, BusPolicy.TDMA)
        safe = ctx_for(taskset, BusPolicy.TDMA)
        safe.tdma_slot_alignment = True
        t = 600
        assert total_bus_accesses(safe, t2, t) > total_bus_accesses(faithful, t2, t)


class TestPerfectBat:
    def test_equals_bas(self, system):
        taskset, t1, t2, t3, t4 = system
        ctx = ctx_for(taskset, BusPolicy.PERFECT)
        t = 600
        assert total_bus_accesses(ctx, t2, t) == bas(ctx, t2, t)


class TestPolicyOrdering:
    def test_perfect_is_least_pessimistic(self, system):
        taskset, t1, t2, t3, t4 = system
        t = 600
        perfect = total_bus_accesses(ctx_for(taskset, BusPolicy.PERFECT), t2, t)
        for policy in (BusPolicy.FP, BusPolicy.RR, BusPolicy.TDMA):
            assert total_bus_accesses(ctx_for(taskset, policy), t2, t) >= perfect


class TestTdmaAlignmentFormula:
    def test_alignment_adds_exactly_one_slot_per_access(self, system):
        taskset, t1, t2, t3, t4 = system
        faithful = ctx_for(taskset, BusPolicy.TDMA, slot_size=3)
        safe = ctx_for(taskset, BusPolicy.TDMA, slot_size=3)
        safe.tdma_slot_alignment = True
        t = 600
        own = bas(faithful, t2, t)
        assert (
            total_bus_accesses(safe, t2, t)
            - total_bus_accesses(faithful, t2, t)
            == own
        )
