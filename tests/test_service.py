"""Unit tests of the batch-analysis service core (no HTTP, no processes).

The daemon's heart — :class:`repro.service.AnalysisService` — is exercised
directly with stub worker pools, so every admission / breaker / drain path
runs in milliseconds and deterministically.  The end-to-end counterpart
against a real daemon process is ``scripts/service_smoke.py`` (CI's
``service-smoke`` job).
"""

import json
import random
import threading
import time

import pytest

from repro.errors import (
    AnalysisError,
    ChunkTimeoutError,
    ModelError,
    WorkerCrashError,
)
from repro.experiments import default_platform
from repro.generation import generate_taskset
from repro.perf import PerfCounters
from repro.serialization import taskset_to_json
from repro.service import (
    AnalysisRequest,
    AnalysisService,
    CircuitBreaker,
    PROTOCOL_VERSION,
    ServiceConfig,
    parse_request,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service.pool import service_worker


@pytest.fixture(scope="module")
def envelope():
    platform = default_platform()
    taskset = generate_taskset(random.Random(5), platform, 0.3)
    return json.loads(taskset_to_json(taskset, platform))


def request_document(envelope, **extra):
    document = {"id": "req-1", "taskset": envelope}
    document.update(extra)
    return document


class TestProtocolValidation:
    def test_valid_request_parses(self, envelope):
        request = parse_request(
            request_document(
                envelope,
                config={"persistence": True},
                budget_seconds=2.5,
                max_iterations=100,
            )
        )
        assert isinstance(request, AnalysisRequest)
        assert request.request_id == "req-1"
        assert request.budget_seconds == 2.5
        assert request.max_iterations == 100
        assert request.config.persistence is True
        assert len(request.taskset) > 0

    def test_non_object_request_is_a_model_error(self):
        with pytest.raises(ModelError, match="JSON object"):
            parse_request(["not", "a", "request"])

    def test_missing_taskset_is_a_model_error(self):
        with pytest.raises(ModelError, match="taskset"):
            parse_request({"id": "x"})

    def test_wrong_format_tag_is_a_model_error(self, envelope):
        broken = dict(envelope, format="not-a-taskset")
        with pytest.raises(ModelError, match="format tag"):
            parse_request(request_document(broken))

    def test_empty_taskset_is_a_model_error(self, envelope):
        broken = dict(envelope, tasks=[])
        with pytest.raises(ModelError, match="no tasks"):
            parse_request(request_document(broken))

    def test_unknown_config_field_is_an_analysis_error(self, envelope):
        with pytest.raises(AnalysisError, match="unknown analysis config"):
            parse_request(
                request_document(envelope, config={"turbo_mode": True})
            )

    @pytest.mark.parametrize("value", [0, -1, "fast", True])
    def test_bad_budget_is_an_analysis_error(self, envelope, value):
        with pytest.raises(AnalysisError, match="budget_seconds"):
            parse_request(request_document(envelope, budget_seconds=value))

    @pytest.mark.parametrize("value", [0, -3, 1.5, True])
    def test_bad_iteration_ceiling_is_an_analysis_error(self, envelope, value):
        with pytest.raises(AnalysisError, match="max_iterations"):
            parse_request(request_document(envelope, max_iterations=value))

    def test_unknown_inject_kind_is_an_analysis_error(self, envelope):
        with pytest.raises(AnalysisError, match="inject"):
            parse_request(request_document(envelope, inject="segfault"))


class TestServiceWorker:
    """The worker function itself, run in-process for speed."""

    def test_ok_response(self, envelope):
        response, perf = service_worker(request_document(envelope))
        assert response["status"] == "ok"
        assert response["version"] == PROTOCOL_VERSION
        assert response["id"] == "req-1"
        assert isinstance(response["schedulable"], bool)
        assert response["response_times"]
        assert isinstance(perf, PerfCounters)
        assert perf.analyses == 1

    def test_budget_abort_response_carries_partials(self, envelope):
        response, perf = service_worker(
            request_document(envelope, max_iterations=2)
        )
        assert response["status"] == "budget-exceeded"
        assert response["iterations"] == 3
        assert response["partial_response_times"]
        assert perf.budget_aborts == 1

    def test_analysis_failure_is_data_not_an_exception(self, envelope):
        # Validation runs inside the worker too (the document crosses a
        # process boundary in production) — a bad document must come back
        # as an error *response*, never as a raised exception.
        response, _perf = service_worker(
            {"id": "bad", "taskset": {"format": "nope"}}
        )
        assert response["status"] == "error"
        assert response["error"] == "ModelError"


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # consumes the single probe slot
        assert not breaker.allow()  # no more probes until a verdict
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_restarts_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        clock.now = 9.0
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)


class StubPool:
    """In-process stand-in for :class:`AnalysisPool`."""

    def __init__(self, outcome=None):
        #: Either a (response, perf) tuple, an exception to raise, or a
        #: callable(document) deciding per request.
        self.outcome = outcome
        self.calls = 0
        self.closed = False

    def run(self, document):
        self.calls += 1
        outcome = self.outcome
        if callable(outcome):
            outcome = outcome(document)
        if isinstance(outcome, Exception):
            raise outcome
        if outcome is None:
            return service_worker(document)
        return outcome

    def allowance_for(self, budget_seconds):
        # Coalesced waiters derive their wait from the leader's watchdog
        # allowance; the stub has no watchdog, so waiters wait forever.
        return None

    def close(self):
        self.closed = True


def make_service(pool=None, breaker=None, clock=None, rng=None, **config):
    extra = {}
    if clock is not None:
        extra["clock"] = clock
    if rng is not None:
        extra["rng"] = rng
    return AnalysisService(
        ServiceConfig(**config), pool=pool or StubPool(), breaker=breaker, **extra
    )


class TestServiceConfig:
    def test_rejects_invalid_knobs(self):
        with pytest.raises(AnalysisError):
            ServiceConfig(port=-1)
        with pytest.raises(AnalysisError):
            ServiceConfig(workers=0)
        with pytest.raises(AnalysisError):
            ServiceConfig(max_in_flight=0)
        with pytest.raises(AnalysisError):
            ServiceConfig(default_budget=-2.0)
        with pytest.raises(AnalysisError):
            ServiceConfig(breaker_reset_seconds=0)

    def test_rejects_invalid_cache_knobs(self):
        with pytest.raises(AnalysisError):
            ServiceConfig(cache_max_entries=0)
        with pytest.raises(AnalysisError):
            ServiceConfig(cache_max_bytes=0)


class TestServiceHandle:
    def test_ok_request_completes(self, envelope):
        service = make_service()
        status, body = service.handle(request_document(envelope))
        assert status == 200
        assert body["status"] == "ok"
        assert service.stats.completed == 1
        assert service.perf.analyses == 1

    def test_invalid_request_is_400_with_typed_body(self, envelope):
        service = make_service()
        status, body = service.handle({"id": "bad"})
        assert status == 400
        assert body["error"] == "ModelError"
        assert service.stats.validation_errors == 1

    def test_budget_abort_is_processed_and_quarantined(self, envelope):
        service = make_service()
        status, body = service.handle(
            request_document(envelope, max_iterations=1)
        )
        assert status == 200  # a typed outcome, not a transport failure
        assert body["status"] == "budget-exceeded"
        assert service.stats.budget_aborted == 1
        assert service.quarantined == [
            {"id": "req-1", "reason": "budget-exceeded"}
        ]

    def test_default_budget_applies_when_request_has_none(self, envelope):
        seen = {}

        def spy(document):
            seen.update(document)
            return service_worker(document)

        service = make_service(pool=StubPool(spy), default_budget=7.5)
        service.handle(request_document(envelope))
        assert seen["budget_seconds"] == 7.5
        # An explicit budget wins over the default.
        service.handle(request_document(envelope, budget_seconds=1.0))
        assert seen["budget_seconds"] == 1.0

    def test_worker_crash_is_500_and_feeds_the_breaker(self, envelope):
        service = make_service(
            pool=StubPool(WorkerCrashError("worker died")),
            breaker_threshold=2,
        )
        status, body = service.handle(request_document(envelope))
        assert (status, body["error"]) == (500, "WorkerCrashError")
        status, _body = service.handle(request_document(envelope))
        assert status == 500
        assert service.breaker.state == OPEN
        # Tripped breaker: requests are refused before touching the pool.
        status, body = service.handle(request_document(envelope))
        assert (status, body["status"]) == (503, "breaker-open")
        assert service.stats.rejected_breaker == 1
        assert service.readyz()[0] == 503

    def test_watchdog_kill_is_504_and_quarantined(self, envelope):
        service = make_service(pool=StubPool(ChunkTimeoutError("hung")))
        status, body = service.handle(request_document(envelope))
        assert (status, body["error"]) == (504, "ChunkTimeoutError")
        assert service.stats.watchdog_kills == 1
        assert service.quarantined == [
            {"id": "req-1", "reason": "watchdog-kill"}
        ]

    def test_admission_bound_gives_429(self, envelope):
        gate = threading.Event()
        release = threading.Event()

        def blocking(document):
            gate.set()
            release.wait(timeout=30)
            return service_worker(document)

        service = make_service(pool=StubPool(blocking), max_in_flight=1)
        results = {}
        worker = threading.Thread(
            target=lambda: results.update(
                first=service.handle(request_document(envelope))
            )
        )
        worker.start()
        try:
            assert gate.wait(timeout=30)
            status, body = service.handle(request_document(envelope))
            assert (status, body["status"]) == (429, "busy")
            # Load-derived, jittered: base 1.0 x (0.5 + load 1.0) x
            # jitter in [0.5, 1.5).
            assert 0.75 <= body["retry_after"] < 2.25
            assert service.stats.rejected_busy == 1
        finally:
            release.set()
            worker.join(timeout=30)
        assert results["first"][0] == 200

    def test_batch_processes_every_document(self, envelope):
        service = make_service()
        status, body = service.handle_batch(
            [request_document(envelope), {"id": "broken"}]
        )
        assert status == 200
        statuses = [entry["status"] for entry in body["responses"]]
        assert statuses == ["ok", "error"]

    def test_stats_document_shape(self, envelope):
        service = make_service()
        service.handle(request_document(envelope))
        document = service.stats_document()
        assert document["requests"]["completed"] == 1
        assert document["in_flight"] == 0
        assert document["breaker"]["state"] == CLOSED
        assert document["perf"]["analyses"] == 1
        json.dumps(document)  # must be wire-serialisable as-is


class TestResultCacheIntegration:
    """The durable-cache tier of the request path."""

    def make_cached_service(self, tmp_path, pool=None, **config):
        return make_service(pool=pool, cache_dir=str(tmp_path), **config)

    def test_identical_repeat_is_a_hit_with_its_own_id(self, tmp_path, envelope):
        pool = StubPool()
        service = self.make_cached_service(tmp_path, pool=pool)
        status, cold = service.handle(request_document(envelope))
        assert status == 200 and cold["status"] == "ok"
        status, warm = service.handle(request_document(envelope, id="req-2"))
        assert status == 200
        assert warm["cache"] == "hit"
        assert warm["id"] == "req-2"  # the hit answers *this* request
        assert pool.calls == 1  # no second computation
        stripped = lambda body: {  # noqa: E731 — tiny local comparator
            k: v for k, v in body.items() if k not in ("id", "cache")
        }
        assert stripped(cold) == stripped(warm)
        assert service.stats.completed == 2
        assert service.perf.result_cache_hits == 1
        assert service.perf.result_cache_stores == 1

    def test_entries_survive_a_service_restart(self, tmp_path, envelope):
        service = self.make_cached_service(tmp_path)
        service.handle(request_document(envelope))
        reborn_pool = StubPool()
        reborn = self.make_cached_service(tmp_path, pool=reborn_pool)
        status, body = reborn.handle(request_document(envelope))
        assert status == 200 and body["cache"] == "hit"
        assert reborn_pool.calls == 0

    def test_budget_abort_is_never_cached(self, tmp_path, envelope):
        # Satellite regression: a partial verdict must not poison the
        # durable cache for the identical future request.
        pool = StubPool()
        service = self.make_cached_service(tmp_path, pool=pool)
        status, body = service.handle(
            request_document(envelope, max_iterations=2)
        )
        assert status == 200 and body["status"] == "budget-exceeded"
        assert len(service.cache) == 0
        # The identical request without the ceiling computes and stores
        # (iteration ceilings are excluded from the fingerprint)...
        status, full = service.handle(request_document(envelope))
        assert status == 200 and full["status"] == "ok"
        assert "cache" not in full
        assert pool.calls == 2
        assert len(service.cache) == 1
        # ...and only then do repeats hit.
        status, warm = service.handle(request_document(envelope))
        assert warm["cache"] == "hit"
        assert pool.calls == 2

    def test_inject_requests_bypass_the_cache(self, tmp_path, envelope):
        ok_body = {
            "version": PROTOCOL_VERSION,
            "id": "req-1",
            "status": "ok",
            "schedulable": True,
            "outer_iterations": 1,
            "response_times": {},
        }
        pool = StubPool((ok_body, PerfCounters()))
        service = self.make_cached_service(tmp_path, pool=pool)
        for _ in range(2):
            status, body = service.handle(
                request_document(envelope, inject="crash")
            )
            assert status == 200 and "cache" not in body
        assert pool.calls == 2  # never coalesced, never served from disk
        assert len(service.cache) == 0  # and never stored

    def test_hits_bypass_an_open_breaker(self, tmp_path, envelope):
        service = self.make_cached_service(tmp_path, breaker_threshold=1)
        service.handle(request_document(envelope))
        service.breaker.record_failure()
        assert service.breaker.state == OPEN
        # An uncached request is refused by the tripped breaker...
        platform = default_platform()
        fresh = json.loads(
            taskset_to_json(
                generate_taskset(random.Random(6), platform, 0.3), platform
            )
        )
        status, body = service.handle(request_document(fresh, id="fresh"))
        assert (status, body["status"]) == (503, "breaker-open")
        # ...while the cached fingerprint is still served.
        status, body = service.handle(request_document(envelope, id="warm"))
        assert status == 200 and body["cache"] == "hit"

    def test_completed_results_seed_the_warm_start_store(
        self, tmp_path, envelope
    ):
        seen = {}

        def spy(document):
            seen.clear()
            seen.update(document)
            return service_worker(document)

        service = self.make_cached_service(tmp_path, pool=StubPool(spy))
        service.handle(request_document(envelope))
        assert "warm_seed" not in seen  # nothing to offer on the first run
        assert len(service.seeds) >= 0
        fingerprint = next(iter(service.cache.fingerprints()))
        if service.seeds.get(fingerprint) is None:
            pytest.skip("fixture task set must be schedulable to seed")
        # Recompute the same fingerprint (cache entry dropped, seed kept):
        # the pool document now carries the converged map as a seed.
        service.cache.invalidate(fingerprint)
        service.handle(request_document(envelope, id="re-run"))
        assert "warm_seed" in seen
        assert seen["warm_seed"]["response_times"]

    def test_stats_document_reports_the_cache(self, tmp_path, envelope):
        service = self.make_cached_service(tmp_path)
        service.handle(request_document(envelope))
        cache = service.stats_document()["cache"]
        assert cache["enabled"] and cache["coalesce"]
        assert cache["coalescing_flights"] == 0
        assert cache["entries"] == 1 and cache["bytes"] > 0
        assert "seeds" in cache
        bare = make_service().stats_document()["cache"]
        assert not bare["enabled"]
        assert "entries" not in bare


class TestCoalescing:
    """The request-coalescing tier (works with or without the cache)."""

    def run_pair(self, service, envelope, entered, release):
        """Start a leader, then a waiter on the identical document."""
        results = {}

        def submit(name, request_id):
            results[name] = service.handle(
                request_document(envelope, id=request_id)
            )

        leader = threading.Thread(target=submit, args=("leader", "lead-1"))
        leader.start()
        assert entered.wait(timeout=30)  # the leader owns the flight
        waiter = threading.Thread(target=submit, args=("waiter", "wait-1"))
        waiter.start()
        deadline = time.monotonic() + 30
        while not service._flights and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.1)  # let the waiter reach flight.done.wait()
        release.set()
        leader.join(timeout=30)
        waiter.join(timeout=30)
        return results

    def blocking_pool(self, entered, release, after=None):
        def blocked(document):
            entered.set()
            assert release.wait(timeout=30)
            if isinstance(after, Exception):
                raise after
            return service_worker(document)

        return StubPool(blocked)

    def test_identical_concurrent_requests_share_one_computation(
        self, envelope
    ):
        entered, release = threading.Event(), threading.Event()
        pool = self.blocking_pool(entered, release)
        service = make_service(pool=pool)
        results = self.run_pair(service, envelope, entered, release)
        status, lead_body = results["leader"]
        assert status == 200 and lead_body["status"] == "ok"
        assert "cache" not in lead_body
        status, wait_body = results["waiter"]
        assert status == 200 and wait_body["cache"] == "coalesced"
        assert wait_body["id"] == "wait-1"
        assert pool.calls == 1
        assert service.perf.coalesced_requests == 1
        assert service.stats.completed == 2
        assert service._flights == {}  # the flight was cleaned up

    def test_leader_failure_is_shared_too(self, envelope):
        entered, release = threading.Event(), threading.Event()
        pool = self.blocking_pool(
            entered, release, after=WorkerCrashError("boom")
        )
        service = make_service(pool=pool)
        results = self.run_pair(service, envelope, entered, release)
        assert results["leader"][0] == 500
        status, body = results["waiter"]
        assert status == 500 and body["error"] == "WorkerCrashError"
        assert pool.calls == 1  # the waiter did not retry the crash

    def test_coalescing_can_be_disabled(self, envelope):
        entered, release = threading.Event(), threading.Event()
        calls = threading.Semaphore(0)

        def counted(document):
            calls.release()
            entered.set()
            assert release.wait(timeout=30)
            return service_worker(document)

        pool = StubPool(counted)
        service = make_service(pool=pool, coalesce=False)
        results = {}

        def submit(name):
            results[name] = service.handle(request_document(envelope, id=name))

        threads = [
            threading.Thread(target=submit, args=(name,))
            for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for _ in range(2):  # both requests must reach the pool
            assert calls.acquire(timeout=30)
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert pool.calls == 2
        assert all(body["status"] == "ok" for _s, body in results.values())
        assert service.perf.coalesced_requests == 0


class TestDrain:
    def test_draining_rejects_new_work(self, envelope):
        service = make_service()
        service.begin_drain()
        status, body = service.handle(request_document(envelope))
        assert (status, body["status"]) == (503, "draining")
        assert service.readyz() == (503, {"status": "draining"})

    def test_drain_waits_for_in_flight_work(self, envelope):
        release = threading.Event()

        def slow(document):
            release.wait(timeout=30)
            return service_worker(document)

        service = make_service(pool=StubPool(slow))
        worker = threading.Thread(
            target=service.handle, args=(request_document(envelope),)
        )
        worker.start()
        time.sleep(0.1)  # let the request register as in flight
        threading.Timer(0.2, release.set).start()
        assert service.drain(grace_seconds=30) is True
        worker.join(timeout=30)
        assert service.quarantined == []

    def test_expired_drain_quarantines_stragglers(self, envelope):
        release = threading.Event()

        def stuck(document):
            release.wait(timeout=30)
            return service_worker(document)

        service = make_service(pool=StubPool(stuck))
        worker = threading.Thread(
            target=service.handle,
            args=(request_document(envelope, id="straggler"),),
        )
        worker.start()
        time.sleep(0.1)
        try:
            assert service.drain(grace_seconds=0.2) is False
            assert service.quarantined == [
                {"id": "straggler", "reason": "drain-timeout"}
            ]
        finally:
            release.set()
            worker.join(timeout=30)

    def test_close_releases_the_pool(self):
        pool = StubPool()
        service = make_service(pool=pool)
        service.close()
        assert pool.closed


class TestDeadlinePropagation:
    """End-to-end deadline handling at the daemon hop (injected clock)."""

    def test_expired_on_arrival_is_shed_before_the_pool(self, envelope):
        pool = StubPool()
        service = make_service(pool=pool, clock=FakeClock())
        # 10ms of deadline minus the 25ms safety margin is already gone.
        status, body = service.handle(
            request_document(envelope, deadline_ms=10)
        )
        assert status == 504
        assert body["status"] == "deadline-expired"
        assert body["shed"] is True
        assert pool.calls == 0  # shed without a pool round-trip
        assert service.stats.shed_expired == 1
        assert service.perf.shed_requests == 1
        assert service.perf.deadline_expired_rejects == 1

    def test_near_zero_deadline_clamps_to_the_minimum_budget(self, envelope):
        seen = {}

        def spy(document):
            seen.update(document)
            return service_worker(document)

        service = make_service(pool=StubPool(spy), clock=FakeClock())
        # 30ms deadline - 25ms safety = 5ms remaining: admitted, but the
        # derived budget is clamped up to min_budget_seconds so the
        # request can at least return its typed abort.
        status, _body = service.handle(
            request_document(envelope, deadline_ms=30)
        )
        assert status == 200
        assert seen["budget_seconds"] == pytest.approx(0.05)
        assert seen["deadline_ms"] == pytest.approx(5.0)

    def test_tighter_caller_budget_wins(self, envelope):
        seen = {}

        def spy(document):
            seen.update(document)
            return service_worker(document)

        service = make_service(pool=StubPool(spy), clock=FakeClock())
        service.handle(
            request_document(envelope, deadline_ms=10_000, budget_seconds=1.0)
        )
        assert seen["budget_seconds"] == 1.0
        # The decremented deadline still travels with the request.
        assert seen["deadline_ms"] == pytest.approx(9_975.0)

    def test_deadline_derived_budget_applies_without_caller_budget(
        self, envelope
    ):
        seen = {}

        def spy(document):
            seen.update(document)
            return service_worker(document)

        service = make_service(pool=StubPool(spy), clock=FakeClock())
        service.handle(request_document(envelope, deadline_ms=2_025))
        assert seen["budget_seconds"] == pytest.approx(2.0)


class TestOverloadControl:
    def test_batch_priority_is_shed_first(self, envelope):
        gate = threading.Event()
        release = threading.Event()

        def blocking(document):
            gate.set()
            release.wait(timeout=30)
            return service_worker(document)

        # batch_cap defaults to max_in_flight // 2 = 2.
        service = make_service(pool=StubPool(blocking), max_in_flight=4)
        results = {}
        workers = [
            threading.Thread(
                target=lambda key=key: results.update(
                    {key: service.handle(request_document(envelope))}
                )
            )
            for key in ("a", "b")
        ]
        for worker in workers:
            worker.start()
        try:
            assert gate.wait(timeout=30)
            deadline = time.monotonic() + 30
            while len(service._active) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            status, body = service.handle(
                request_document(envelope, priority="batch")
            )
            assert status == 429
            assert body["status"] == "overload-shed"
            assert body["shed"] is True
            assert body["retry_after"] > 0
            assert service.stats.shed_overload == 1
            assert service.perf.shed_requests == 1
            # Interactive requests are still admitted at this load.
            status, body = service.handle(request_document(envelope))
            assert status == 200
        finally:
            release.set()
            for worker in workers:
                worker.join(timeout=30)

    def test_retry_after_is_deterministic_with_injected_rng(self, envelope):
        gate = threading.Event()
        release = threading.Event()

        def blocking(document):
            gate.set()
            release.wait(timeout=30)
            return service_worker(document)

        service = make_service(
            pool=StubPool(blocking), max_in_flight=1, rng=random.Random(0)
        )
        results = {}
        worker = threading.Thread(
            target=lambda: results.update(
                first=service.handle(request_document(envelope))
            )
        )
        worker.start()
        try:
            assert gate.wait(timeout=30)
            _status, body = service.handle(request_document(envelope))
            expected = round(
                1.0 * (0.5 + 1.0) * (0.5 + random.Random(0).random()), 3
            )
            assert body["retry_after"] == expected
        finally:
            release.set()
            worker.join(timeout=30)


class TestBrownout:
    def test_brownout_serves_the_coarse_tier_without_the_pool(self, envelope):
        pool = StubPool()
        # brownout_in_flight=1: the very first admitted slot browns out.
        service = make_service(
            pool=pool, max_in_flight=4, brownout_in_flight=1
        )
        status, body = service.handle(
            request_document(envelope, degrade=True)
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["brownout"] is True
        assert body["degraded"]["tier"] == "coarse"
        assert body["degraded"]["soundness"] == "degraded-sound"
        assert pool.calls == 0
        assert service.stats.brownout_served == 1
        assert service.stats.degraded == 1
        assert service.perf.degraded_responses == 1
        assert service.perf.ladder_tier_runs == 1

    def test_open_breaker_browns_out_degradable_requests(self, envelope):
        pool = StubPool()
        breaker = CircuitBreaker(failure_threshold=1, clock=FakeClock())
        breaker.record_failure()
        assert breaker.state == OPEN
        service = make_service(pool=pool, breaker=breaker)
        # Degradable request: served degraded instead of 503.
        status, body = service.handle(
            request_document(envelope, degrade=True)
        )
        assert (status, body["brownout"]) == (200, True)
        assert pool.calls == 0
        # Non-degradable request: the exact pre-pressure semantics.
        status, body = service.handle(request_document(envelope))
        assert (status, body["status"]) == (503, "breaker-open")

    def test_degraded_answers_never_enter_the_cache(self, envelope, tmp_path):
        service = make_service(
            max_in_flight=4,
            brownout_in_flight=1,
            cache_dir=str(tmp_path),
        )
        first = service.handle(request_document(envelope, degrade=True))[1]
        assert first["brownout"] is True
        # A second identical request must not be served from the cache:
        # the degraded body was never stored under the exact fingerprint.
        second = service.handle(
            request_document(envelope, id="req-2", degrade=True)
        )[1]
        assert second.get("cache") != "hit"
        assert second["brownout"] is True

    def test_ladder_degrades_through_the_pool_path(self, envelope):
        # A starved iteration budget with degrade=True: the pool worker
        # runs the ladder and answers from a degraded tier instead of
        # aborting, and the daemon counts it.
        service = make_service(max_in_flight=4)
        status, body = service.handle(
            request_document(
                envelope, degrade=True, max_iterations=50
            )
        )
        assert status == 200
        if body["status"] == "ok":
            assert body["degraded"]["tier"] in ("baseline", "coarse")
            assert service.stats.degraded == 1
        else:
            # Even the coarse tier did not fit: typed abort with the
            # unknown-soundness marker.
            assert body["status"] == "budget-exceeded"
            assert body["degraded"]["soundness"] == "unknown"
