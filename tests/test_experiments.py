"""Smoke and shape tests for the experiment drivers (tiny sample counts)."""

import pytest

from repro.experiments.config import (
    PAPER_UTILIZATIONS,
    SweepSettings,
    Variant,
    default_platform,
    settings_from_environment,
    slot_variants,
    standard_variants,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3a, run_fig3b, run_fig3c, run_fig3d
from repro.experiments.report import format_gaps, format_rows, format_table
from repro.experiments.runner import (
    max_gap,
    run_curve,
    schedulability_ratios,
    weighted_measures,
)
from repro.experiments.table1 import run_table1
from repro.errors import AnalysisError
from repro.model.platform import BusPolicy

TINY = SweepSettings(samples=4, seed=7, utilizations=(0.2, 0.4, 0.6))


class TestConfig:
    def test_paper_grid(self):
        assert PAPER_UTILIZATIONS[0] == 0.05
        assert PAPER_UTILIZATIONS[-1] == 1.0
        assert len(PAPER_UTILIZATIONS) == 20

    def test_standard_variants(self):
        labels = [v.label for v in standard_variants()]
        assert labels == ["FP-P", "FP", "RR-P", "RR", "TDMA-P", "TDMA", "Perfect"]

    def test_slot_variants_exclude_fp(self):
        assert all(v.policy is not BusPolicy.FP for v in slot_variants())

    def test_default_platform_matches_paper(self):
        platform = default_platform()
        assert platform.num_cores == 4
        assert platform.cache.num_sets == 256
        assert platform.slot_size == 2

    def test_settings_validation(self):
        with pytest.raises(AnalysisError):
            SweepSettings(samples=0)
        with pytest.raises(AnalysisError):
            SweepSettings(jobs=-1)
        with pytest.raises(AnalysisError):
            SweepSettings(utilizations=())

    def test_settings_reject_degenerate_utilizations(self):
        with pytest.raises(AnalysisError, match="utilisation"):
            SweepSettings(utilizations=(0.2, float("nan")))
        with pytest.raises(AnalysisError, match="utilisation"):
            SweepSettings(utilizations=(0.2, float("inf")))
        with pytest.raises(AnalysisError, match="utilisation"):
            SweepSettings(utilizations=(0.2, 0.0))
        with pytest.raises(AnalysisError, match="utilisation"):
            SweepSettings(utilizations=(-0.5,))

    def test_settings_reject_bad_supervision_parameters(self):
        with pytest.raises(AnalysisError, match="timeout"):
            SweepSettings(timeout=0.0)
        with pytest.raises(AnalysisError, match="timeout"):
            SweepSettings(timeout=float("nan"))
        with pytest.raises(AnalysisError, match="retries"):
            SweepSettings(retries=-1)
        with pytest.raises(AnalysisError, match="backoff"):
            SweepSettings(backoff=-0.1)
        # The defaults and explicit sane values pass.
        SweepSettings(timeout=10.0, retries=0, backoff=0.0)

    def test_jobs_zero_resolves_to_cpu_count(self):
        import os

        assert SweepSettings(jobs=0).jobs == (os.cpu_count() or 1)

    def test_environment_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "17")
        monkeypatch.setenv("REPRO_JOBS", "3")
        settings = settings_from_environment()
        assert settings.samples == 17
        assert settings.jobs == 3

    def test_environment_jobs_auto(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "0")
        assert settings_from_environment().jobs == (os.cpu_count() or 1)

    def test_environment_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(AnalysisError, match="REPRO_JOBS"):
            settings_from_environment()

    def test_explicit_overrides_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "17")
        assert settings_from_environment(samples=5).samples == 5


class TestRunner:
    def test_outcomes_deterministic(self):
        platform = default_platform()
        variants = standard_variants(include_perfect=False)[:2]
        a = run_curve(platform, variants, TINY)
        b = run_curve(platform, variants, TINY)
        for utilization in TINY.utilizations:
            assert [s.verdicts for s in a[utilization]] == [
                s.verdicts for s in b[utilization]
            ]

    def test_ratios_within_unit_interval(self):
        platform = default_platform()
        variants = standard_variants(include_perfect=False)[:2]
        outcomes = run_curve(platform, variants, TINY)
        ratios = schedulability_ratios(outcomes, variants)
        for series in ratios.values():
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_weighted_measures_within_unit_interval(self):
        platform = default_platform()
        variants = standard_variants(include_perfect=False)[:2]
        outcomes = run_curve(platform, variants, TINY)
        measures = weighted_measures(outcomes, variants)
        for value in measures.values():
            assert 0.0 <= value <= 1.0

    def test_max_gap(self):
        ratios = {"A": [0.9, 0.5], "B": [0.4, 0.45]}
        assert max_gap(ratios, "A", "B") == pytest.approx(0.5)

    def test_ratios_of_empty_grid_is_typed_error(self):
        variants = standard_variants(include_perfect=False)[:2]
        with pytest.raises(AnalysisError, match="empty utilisation grid"):
            schedulability_ratios({}, variants)

    def test_ratios_of_fully_quarantined_point_is_typed_error(self):
        variants = standard_variants(include_perfect=False)[:2]
        outcomes = run_curve(default_platform(), variants, TINY)
        outcomes[0.4] = []  # every sample at this point was quarantined
        with pytest.raises(AnalysisError, match="no surviving samples"):
            schedulability_ratios(outcomes, variants)

    def test_max_gap_over_empty_series_is_typed_error(self):
        with pytest.raises(AnalysisError, match="empty ratio series"):
            max_gap({"A": [], "B": []}, "A", "B")

    def test_max_gap_over_unknown_label_is_typed_error(self):
        with pytest.raises(AnalysisError, match="unknown variant label"):
            max_gap({"A": [0.5]}, "A", "missing")


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(TINY)

    def test_series_cover_grid(self, result):
        assert result.utilizations == TINY.utilizations
        for label in ("FP-P", "FP", "RR-P", "RR", "TDMA-P", "TDMA", "Perfect"):
            assert len(result.ratios[label]) == len(TINY.utilizations)

    def test_persistence_dominates_baseline(self, result):
        for policy in ("FP", "RR", "TDMA"):
            aware = result.ratios[f"{policy}-P"]
            base = result.ratios[policy]
            assert all(a >= b for a, b in zip(aware, base))

    def test_perfect_dominates_everything(self, result):
        perfect = result.ratios["Perfect"]
        for label, series in result.ratios.items():
            if label != "Perfect":
                assert all(p >= v for p, v in zip(perfect, series))

    def test_gaps_are_reported(self, result):
        assert set(result.gaps) == {"FP", "RR", "TDMA"}
        assert all(0.0 <= gap <= 1.0 for gap in result.gaps.values())

    def test_render_contains_panels(self, result):
        text = result.render()
        assert "Fig. 2a" in text and "Fig. 2c" in text
        assert "percentage points" in text


class TestFig3:
    def test_fig3a_shape(self):
        result = run_fig3a(TINY, core_counts=(2, 4))
        assert result.x_values == (2, 4)
        for label, series in result.measures.items():
            assert len(series) == 2
        # More cores -> never easier for the same per-core utilisation.
        for policy in ("FP-P", "FP"):
            assert result.measures[policy][1] <= result.measures[policy][0] + 0.25

    def test_fig3b_runs(self):
        result = run_fig3b(TINY, d_mem_microseconds=(2, 10))
        assert result.x_values == (2, 10)
        assert "FP-P" in result.measures

    def test_fig3c_runs_with_hybrid_parameters(self):
        result = run_fig3c(TINY, cache_sets=(64, 256))
        assert result.x_values == (64, 256)
        assert all(0 <= v <= 1 for series in result.measures.values() for v in series)

    def test_fig3d_slot_axis(self):
        result = run_fig3d(TINY, slot_sizes=(1, 4))
        assert set(result.measures) == {"RR-P", "RR", "TDMA-P", "TDMA"}

    def test_render(self):
        result = run_fig3a(TINY, core_counts=(2,))
        assert "Fig. 3a" in result.render()


class TestTable1:
    def test_twenty_five_rows(self):
        assert len(run_table1().rows) == 25

    def test_render_lists_all_benchmarks(self):
        text = run_table1().render()
        for name in ("lcdnum", "nsichneu", "minver"):
            assert name in text


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", "x", [1, 2], {"A": [0.1, 0.2], "B": [0.3, 0.4]})
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[2] and "B" in lines[2]
        assert "0.100" in text and "0.400" in text

    def test_format_gaps(self):
        text = format_gaps({"FP": 0.7})
        assert "70.0 pp" in text

    def test_format_rows(self):
        text = format_rows("T", ("a", "b"), [(1, 2), (30, 40)])
        assert "30" in text and "b" in text

    def test_format_coverage_lists_quarantines(self):
        from repro.experiments.report import format_coverage
        from repro.experiments.supervisor import SampleFailure

        failure = SampleFailure(
            point=1,
            sample=2,
            utilization=0.4,
            seed=123,
            kind="crash",
            exception="WorkerCrashError",
            message="worker died",
            traceback_digest="",
            attempts=3,
        )
        text = format_coverage(7, 8, [failure])
        assert "7/8" in text and "87.5%" in text
        assert "reproducer seed 123" in text


class TestParallelRunner:
    def test_parallel_jobs_match_sequential(self):
        # Determinism is seed-based, so worker processes must reproduce the
        # sequential results exactly.
        platform = default_platform()
        variants = standard_variants(include_perfect=False)[:2]
        sequential = run_curve(platform, variants, TINY)
        from dataclasses import replace

        parallel = run_curve(platform, variants, replace(TINY, jobs=2))
        for utilization in TINY.utilizations:
            assert [s.verdicts for s in sequential[utilization]] == [
                s.verdicts for s in parallel[utilization]
            ]


class TestFig1:
    def test_all_quantities_match_paper(self):
        from repro.experiments.fig1 import run_fig1

        result = run_fig1()
        assert result.all_match
        assert len(result.checks) == 9

    def test_render_reports_verdicts(self):
        from repro.experiments.fig1 import run_fig1

        text = run_fig1().render()
        assert "Fig. 1" in text
        assert "MISMATCH" not in text
        assert text.count("ok") >= 9
