"""Unit tests of the fingerprint-sharded service router.

:class:`repro.service.router.ShardRouter` is HTTP-free and takes an
injectable transport, so these tests drive the full routing, retry,
failover and health logic with an in-memory fake — programmable per-shard
behaviour (serving, dead, refusing, not ready) plus recorded backoff
sleeps.  The same logic against real SIGKILLed/SIGSTOPped daemon
processes is exercised by ``scripts/chaos_smoke.py``.
"""

import json
import random

import pytest

from repro.errors import AnalysisError
from repro.experiments import default_platform
from repro.generation import generate_taskset
from repro.resultcache import request_fingerprint
from repro.serialization import taskset_to_json
from repro.service.protocol import parse_request
from repro.service.router import RouterConfig, ShardRouter


@pytest.fixture(scope="module")
def envelope():
    platform = default_platform()
    taskset = generate_taskset(random.Random(5), platform, 0.3)
    return json.loads(taskset_to_json(taskset, platform))


def request_document(envelope, **extra):
    document = {"id": "req-1", "taskset": envelope}
    document.update(extra)
    return document


def fingerprint_of(document):
    """The exact server-side fingerprint computation."""
    request = parse_request(document)
    return request_fingerprint(request.taskset, request.platform, request.config)


class FakeTransport:
    """Programmable in-memory shard fleet.

    Per-shard ``modes``: ``"ok"`` serves, ``"dead"`` raises
    :class:`OSError` (connection refused / timeout), ``"refuse"`` returns
    a breaker-open 503, ``"notready"`` serves analyses but fails
    ``/readyz``.
    """

    def __init__(self, urls, modes=None):
        self.urls = list(urls)
        self.modes = dict(modes or {})
        self.calls = []

    def mode_of(self, url):
        base = next(base for base in self.urls if url.startswith(base))
        return base, self.modes.get(base, "ok")

    def __call__(self, method, url, document, timeout):
        self.calls.append((method, url, document, timeout))
        base, mode = self.mode_of(url)
        if mode == "dead":
            raise ConnectionRefusedError(f"{base} is down")
        if url.endswith("/readyz"):
            if mode == "notready":
                return 503, {"status": "draining"}
            return 200, {"status": "ready"}
        if mode == "refuse":
            return 503, {"status": "breaker-open", "retry_after": 1}
        if mode == "notready":
            mode = "ok"
        request_id = document.get("id", "") if isinstance(document, dict) else ""
        return 200, {"status": "ok", "id": request_id, "served_by": base}

    def analyze_urls(self):
        return [url for _m, url, _d, _t in self.calls if url.endswith("/analyze")]


def make_router(num_shards=3, modes=None, clock=None, **config):
    urls = tuple(f"http://shard{index}" for index in range(num_shards))
    transport = FakeTransport(urls, modes)
    sleeps = []
    extra = {} if clock is None else {"clock": clock}
    router = ShardRouter(
        RouterConfig(shards=urls, **config),
        transport=transport,
        sleep=sleeps.append,
        **extra,
    )
    return router, transport, sleeps


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRouterConfig:
    def test_requires_at_least_one_shard(self):
        with pytest.raises(AnalysisError):
            RouterConfig(shards=())

    @pytest.mark.parametrize(
        "bad",
        [
            {"port": 70000},
            {"health_interval_seconds": 0},
            {"forward_timeout": 0},
            {"health_timeout": -1},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_base": 2.0, "backoff_cap": 1.0},
        ],
    )
    def test_rejects_invalid_knobs(self, bad):
        with pytest.raises(AnalysisError):
            RouterConfig(shards=("http://a",), **bad)


class TestSharding:
    def test_shard_for_is_fingerprint_prefix_modulo(self):
        router, _transport, _sleeps = make_router(num_shards=3)
        fingerprint = "ab" * 32
        assert router.shard_for(fingerprint) == int(fingerprint[:16], 16) % 3

    def test_identical_requests_land_on_the_same_shard(self, envelope):
        router, transport, _sleeps = make_router(num_shards=4)
        document = request_document(envelope)
        first = router.forward(document)[1]["shard"]
        second = router.forward(dict(document, id="req-2"))[1]["shard"]
        assert first == second
        assert first == router.shard_for(fingerprint_of(document))
        assert len(set(transport.analyze_urls())) == 1

    def test_config_knobs_do_not_move_the_shard(self, envelope):
        # Invisible optimisation knobs are excluded from the fingerprint,
        # so toggling them cannot scatter a request across shards.
        router, _transport, _sleeps = make_router(num_shards=4)
        document = request_document(envelope)
        tuned = request_document(envelope, config={"memoization": False})
        assert router.forward(document)[1]["shard"] == (
            router.forward(tuned)[1]["shard"]
        )

    def test_invalid_documents_round_robin(self):
        router, _transport, _sleeps = make_router(num_shards=3)
        shards = [router.forward({"id": f"bad-{i}"})[1]["shard"] for i in range(3)]
        assert shards == [0, 1, 2]


class TestForwarding:
    def test_healthy_primary_serves_without_retries(self, envelope):
        router, transport, sleeps = make_router()
        document = request_document(envelope)
        status, body = router.forward(document)
        assert status == 200
        assert body["status"] == "ok"
        assert body["shard"] == router.shard_for(fingerprint_of(document))
        assert len(transport.analyze_urls()) == 1
        assert sleeps == []
        stats = router.stats_document()["router"]
        assert (stats["forwards"], stats["retries"], stats["failovers"]) == (
            1,
            0,
            0,
        )
        assert stats["hedges_sent"] == 0
        assert stats["latency_samples"] == 1

    def test_dead_primary_fails_over_with_backoff(self, envelope):
        document = request_document(envelope)
        probe, _t, _s = make_router()
        primary = probe.shard_for(fingerprint_of(document))
        router, transport, sleeps = make_router(
            modes={f"http://shard{primary}": "dead"}, backoff_base=0.05
        )
        status, body = router.forward(document)
        assert status == 200
        assert body["shard"] == (primary + 1) % 3
        assert sleeps == [0.05]
        stats = router.stats_document()
        assert stats["router"]["retries"] == 1
        assert stats["router"]["failovers"] == 1
        assert not stats["shards"][primary]["healthy"]

    def test_refusing_primary_fails_over(self, envelope):
        document = request_document(envelope)
        probe, _t, _s = make_router()
        primary = probe.shard_for(fingerprint_of(document))
        router, _transport, _sleeps = make_router(
            modes={f"http://shard{primary}": "refuse"}
        )
        status, body = router.forward(document)
        assert status == 200 and body["status"] == "ok"
        assert body["shard"] != primary

    def test_last_candidate_refusal_is_returned_as_is(self, envelope):
        # Everyone refusing is not the same as everyone dead: the caller
        # gets the shards' own typed 503, tagged with the serving shard.
        router, _transport, _sleeps = make_router(
            modes={f"http://shard{i}": "refuse" for i in range(3)}
        )
        status, body = router.forward(request_document(envelope))
        assert status == 503
        assert body["status"] == "breaker-open"
        assert "shard" in body

    def test_all_dead_degrades_to_typed_503(self, envelope):
        router, transport, _sleeps = make_router(
            modes={f"http://shard{i}": "dead" for i in range(3)}
        )
        status, body = router.forward(request_document(envelope))
        assert status == 503
        assert body["status"] == "no-shards"
        assert body["retry_after"] == 1
        assert len(transport.analyze_urls()) == 3  # every shard was tried
        assert router.readyz()[0] == 503  # failures fed the health map

    def test_retry_budget_caps_the_attempts(self, envelope):
        router, transport, _sleeps = make_router(
            num_shards=5,
            modes={f"http://shard{i}": "dead" for i in range(5)},
            max_retries=2,
        )
        status, body = router.forward(request_document(envelope))
        assert status == 503 and body["status"] == "no-shards"
        assert len(transport.analyze_urls()) == 3  # primary + 2 retries

    def test_backoff_doubles_up_to_the_cap(self, envelope):
        router, _transport, sleeps = make_router(
            num_shards=5,
            modes={f"http://shard{i}": "dead" for i in range(5)},
            max_retries=4,
            backoff_base=0.05,
            backoff_cap=0.2,
        )
        router.forward(request_document(envelope))
        assert sleeps == [0.05, 0.1, 0.2, 0.2]

    def test_inject_requests_get_exactly_one_attempt(self, envelope):
        # Fault injections kill or hang a worker — a replay is not a
        # no-op, so a dead primary must NOT fail over.
        router, transport, sleeps = make_router(
            modes={"http://shard0": "dead", "http://shard1": "dead",
                   "http://shard2": "dead"}
        )
        document = request_document(envelope, inject="crash")
        status, body = router.forward(document)
        assert status == 503 and body["status"] == "no-shards"
        assert len(transport.analyze_urls()) == 1
        assert sleeps == []

    def test_unhealthy_shards_are_deprioritised_not_dropped(self, envelope):
        document = request_document(envelope)
        probe, _t, _s = make_router()
        primary = probe.shard_for(fingerprint_of(document))
        backup = (primary + 1) % 3
        # The ring successor is known-unhealthy; a dead primary should
        # skip it in favour of the healthy shard — but keep it as a last
        # resort (the health map is advisory).
        router, _transport, _sleeps = make_router(
            modes={
                f"http://shard{primary}": "dead",
                f"http://shard{backup}": "notready",
            }
        )
        router.probe_all()
        status, body = router.forward(document)
        assert status == 200
        assert body["shard"] == (primary + 2) % 3
        candidates = router._candidates(primary, idempotent=True)
        assert candidates[0] == primary  # primary always tried first
        assert candidates[-1] == backup  # unhealthy last, never dropped


class TestHealth:
    def test_probe_marks_shards(self):
        router, _transport, _sleeps = make_router(
            modes={"http://shard1": "notready", "http://shard2": "dead"}
        )
        assert router.probe_all() == 1
        stats = router.stats_document()["shards"]
        assert [shard["healthy"] for shard in stats] == [True, False, False]
        assert stats[0]["detail"] == "ready"
        assert "not ready" in stats[1]["detail"]
        assert "probe failed" in stats[2]["detail"]

    def test_readyz_needs_one_healthy_shard(self):
        router, _transport, _sleeps = make_router(
            modes={"http://shard1": "dead", "http://shard2": "dead"}
        )
        router.probe_all()
        status, body = router.readyz()
        assert status == 200 and body["shards_ready"] == 1
        router.transport.modes["http://shard0"] = "dead"
        router.probe_all()
        status, body = router.readyz()
        assert status == 503 and body["status"] == "no-shards"

    def test_recovery_is_observed_by_the_next_probe(self):
        router, transport, _sleeps = make_router(
            modes={"http://shard0": "dead"}
        )
        router.probe_all()
        assert not router.stats_document()["shards"][0]["healthy"]
        transport.modes["http://shard0"] = "ok"
        router.probe_all()
        assert router.stats_document()["shards"][0]["healthy"]


class TestBatch:
    def test_batch_splits_across_shards(self, envelope):
        router, _transport, _sleeps = make_router(num_shards=2)
        documents = [
            request_document(envelope, id="a"),
            {"id": "bad"},  # invalid — still gets a per-item response
        ]
        status, body = router.forward_batch(documents)
        assert status == 200
        assert [item["id"] for item in body["responses"]] == ["a", "bad"]
        assert body["responses"][0]["status"] == "ok"

    def test_batch_rejects_non_arrays(self):
        router, _transport, _sleeps = make_router()
        status, body = router.forward_batch({"not": "a list"})
        assert status == 400
        assert body["error"] == "ModelError"


class TestDeadlineAwareRetries:
    def test_retry_never_outlives_the_caller_deadline(self, envelope):
        # Every shard dead, 30ms of deadline: after the first failed
        # attempt the 50ms backoff alone would outlive the caller, so
        # the router stops with a typed 504 instead of retrying.
        router, transport, sleeps = make_router(
            modes={f"http://shard{i}": "dead" for i in range(3)},
            clock=FakeClock(),
            backoff_base=0.05,
        )
        status, body = router.forward(
            request_document(envelope, deadline_ms=30)
        )
        assert status == 504
        assert body["status"] == "deadline-expired"
        assert body["shed"] is True
        assert len(transport.analyze_urls()) == 1
        assert sleeps == []  # the backoff sleep never happened
        assert router.perf.shed_requests == 1
        assert router.perf.deadline_expired_rejects == 1

    def test_deadline_is_decremented_and_bounds_the_timeout(self, envelope):
        router, transport, _sleeps = make_router(clock=FakeClock())
        status, _body = router.forward(
            request_document(envelope, deadline_ms=1_000)
        )
        assert status == 200
        _method, _url, document, timeout = transport.calls[-1]
        # 1000ms minus the 25ms safety margin travels to the shard, and
        # the transport attempt cannot wait longer than that.
        assert document["deadline_ms"] == pytest.approx(975.0)
        assert timeout == pytest.approx(0.975)

    def test_expired_on_arrival_is_shed_without_any_attempt(self, envelope):
        router, transport, _sleeps = make_router(clock=FakeClock())
        status, body = router.forward(
            request_document(envelope, deadline_ms=10)
        )
        assert status == 504
        assert body["shed"] is True
        assert transport.analyze_urls() == []

    def test_no_deadline_keeps_the_old_retry_behaviour(self, envelope):
        router, transport, sleeps = make_router(
            modes={"http://shard0": "dead"}, clock=FakeClock()
        )
        document = request_document(envelope)
        status, _body = router.forward(document)
        assert status == 200
        assert transport.calls[-1][3] is None  # no timeout derived


class TestRetryAfterCooldown:
    def test_cooling_shard_sorts_to_the_back(self, envelope):
        clock = FakeClock()
        router, transport, _sleeps = make_router(clock=clock)
        document = request_document(envelope)
        primary = router.shard_for(fingerprint_of(document))
        transport.modes[f"http://shard{primary}"] = "refuse"
        # First forward: primary refuses with Retry-After 1, fails over.
        status, body = router.forward(document)
        assert status == 200
        assert body["shard"] != primary
        # Second forward inside the cooldown window: the primary is not
        # even attempted — its Retry-After is honoured.
        transport.calls.clear()
        status, body = router.forward(dict(document, id="req-2"))
        assert status == 200
        first_url = transport.analyze_urls()[0]
        assert f"shard{primary}" not in first_url
        # After the window the primary is preferred again.
        clock.now = 2.0
        transport.modes.pop(f"http://shard{primary}")
        transport.calls.clear()
        status, body = router.forward(dict(document, id="req-3"))
        assert body["shard"] == primary

    def test_cooldown_is_reported_in_stats(self, envelope):
        clock = FakeClock()
        router, transport, _sleeps = make_router(clock=clock)
        document = request_document(envelope)
        primary = router.shard_for(fingerprint_of(document))
        transport.modes[f"http://shard{primary}"] = "refuse"
        router.forward(document)
        stats = router.stats_document()
        assert stats["shards"][primary]["cooling_seconds"] == pytest.approx(
            1.0
        )


class TestHedging:
    def test_cold_router_never_hedges(self, envelope):
        router, transport, _sleeps = make_router()
        status, _body = router.forward(request_document(envelope))
        assert status == 200
        assert len(transport.analyze_urls()) == 1
        assert router.perf.hedges_sent == 0

    def test_slow_primary_is_hedged_and_backup_wins(self, envelope):
        import threading as _threading

        document = request_document(envelope)
        probe, _t, _s = make_router(num_shards=2)
        primary = probe.shard_for(fingerprint_of(document))
        release = _threading.Event()
        urls = ("http://shard0", "http://shard1")

        def transport(method, url, doc, timeout):
            if url.endswith("/analyze") and f"shard{primary}" in url:
                release.wait(timeout=30)
            request_id = doc.get("id", "") if isinstance(doc, dict) else ""
            return 200, {"status": "ok", "id": request_id}

        router = ShardRouter(
            RouterConfig(shards=urls, hedge_min_samples=4),
            transport=transport,
            sleep=lambda _s: None,
        )
        # Prime the latency window so the p95 hedge delay is tiny.
        router._latencies.extend([0.01] * 8)
        try:
            status, body = router.forward(document)
            assert status == 200
            assert body["shard"] == 1 - primary
            assert router.perf.hedges_sent == 1
            assert router.perf.hedges_won == 1
        finally:
            release.set()

    def test_fast_primary_wins_without_a_hedge(self, envelope):
        router, transport, _sleeps = make_router(
            num_shards=2, hedge_min_samples=4
        )
        document = request_document(envelope)
        # Generous hedge delay: the instant fake transport always beats it.
        router._latencies.extend([5.0] * 8)
        status, body = router.forward(document)
        assert status == 200
        assert body["shard"] == router.shard_for(fingerprint_of(document))
        assert router.perf.hedges_sent == 0
        assert router.perf.hedges_won == 0

    def test_hedging_can_be_disabled(self, envelope):
        router, transport, _sleeps = make_router(
            num_shards=2, hedge_enabled=False, hedge_min_samples=1
        )
        router._latencies.extend([0.0] * 8)
        status, _body = router.forward(request_document(envelope))
        assert status == 200
        assert router.perf.hedges_sent == 0


class TestPollerHygiene:
    def test_poller_thread_is_daemonized_and_joinable(self):
        router, _transport, _sleeps = make_router(
            health_interval_seconds=0.01
        )
        router.start_health_poller()
        poller = router._poller
        assert poller is not None
        assert poller.daemon  # a hung probe cannot wedge process exit
        router.stop_health_poller()
        assert router._poller is None
        assert not poller.is_alive()

    def test_stop_is_idempotent(self):
        router, _transport, _sleeps = make_router()
        router.stop_health_poller()  # never started: no-op
        router.start_health_poller()
        router.stop_health_poller()
        router.stop_health_poller()
