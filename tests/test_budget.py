"""Deadline-budget and cooperative-cancellation tests.

Pins the three guarantees :mod:`repro.budget` makes:

1. completions under an active budget are bit-identical to budget-less
   runs (the broad grid lives in ``tests/test_differential.py``; here only
   the targeted cases);
2. iteration-ceiling aborts are deterministic and carry typed partial
   results;
3. aborting at *any* iteration boundary leaves every shared cache and
   warm-start seed in a state where the rerun is bit-identical to a cold
   run — the property test walks every single boundary of one analysis.
"""

import random

import pytest

from repro.analysis.config import AnalysisConfig
from repro.analysis.wcrt import analyze_taskset
from repro.budget import Budget, CancelToken, DEFAULT_WALL_CHECK_STRIDE
from repro.errors import (
    AnalysisError,
    BudgetExceeded,
    Cancelled,
)
from repro.experiments.config import default_platform
from repro.generation.taskset_gen import generate_taskset


class FakeClock:
    """Deterministic monotonic clock for wall-deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestBudgetUnit:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(AnalysisError):
            Budget(wall_seconds=0)
        with pytest.raises(AnalysisError):
            Budget(wall_seconds=-1.0)
        with pytest.raises(AnalysisError):
            Budget(max_iterations=0)
        with pytest.raises(AnalysisError):
            Budget(wall_check_stride=0)

    def test_unlimited_budget_never_fires(self):
        budget = Budget()
        budget.start()
        for _ in range(10_000):
            budget.tick()
        assert budget.iterations == 10_000
        assert budget.remaining() is None

    def test_iteration_ceiling_fires_at_exact_boundary(self):
        budget = Budget(max_iterations=5)
        for _ in range(5):
            budget.tick()
        with pytest.raises(BudgetExceeded, match="iteration ceiling of 5"):
            budget.tick()
        assert budget.iterations == 6

    def test_wall_deadline_with_injected_clock(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=10.0, clock=clock, wall_check_stride=1)
        budget.start()
        clock.now = 9.9
        budget.tick()  # within budget
        clock.now = 10.1
        with pytest.raises(BudgetExceeded, match="wall-clock"):
            budget.tick()

    def test_wall_checks_are_strided(self):
        # With the default stride the clock is only consulted every
        # stride ticks, so an overrun is detected at the next read —
        # never later than stride ticks after it happened.
        clock = FakeClock()
        budget = Budget(wall_seconds=1.0, clock=clock)
        budget.start()
        budget.tick()  # tick 1 reads the clock (still at 0.0)
        clock.now = 5.0
        for _ in range(DEFAULT_WALL_CHECK_STRIDE - 1):
            budget.tick()  # strided: no clock read yet
        with pytest.raises(BudgetExceeded):
            budget.tick()

    def test_cancel_token_fires_cancelled(self):
        token = CancelToken()
        budget = Budget(token=token, wall_check_stride=1)
        budget.tick()
        token.cancel()
        assert token.cancelled
        with pytest.raises(Cancelled):
            budget.tick()

    def test_check_does_not_charge_iterations(self):
        budget = Budget(max_iterations=1)
        budget.check()
        budget.check()
        assert budget.iterations == 0

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = Budget(wall_seconds=5.0, clock=clock)
        budget.start()
        clock.now = 3.0
        budget.start()  # must not re-arm the deadline
        assert budget.elapsed() == pytest.approx(3.0)
        assert budget.remaining() == pytest.approx(2.0)


def _fresh(seed=11, utilization=0.45):
    platform = default_platform()
    return generate_taskset(random.Random(seed), platform, utilization), platform


def _canonical(result):
    """Name-keyed projection of a result, comparable across distinct
    (but identically generated) task-set objects — ``Task`` equality is
    by identity, so ``WcrtResult ==`` only works within one object."""
    return (
        result.schedulable,
        tuple(
            sorted(
                (task.name, bound)
                for task, bound in result.response_times.items()
            )
        ),
        result.failed_task.name if result.failed_task else None,
        result.outer_iterations,
    )


class TestBudgetedAnalysis:
    def test_generous_budget_is_invisible(self):
        taskset, platform = _fresh()
        cold = analyze_taskset(taskset, platform, AnalysisConfig())
        budgeted_set, _ = _fresh()
        budget = Budget(max_iterations=10**9, wall_seconds=3600.0)
        budgeted = analyze_taskset(
            budgeted_set, platform, AnalysisConfig(), budget=budget
        )
        assert _canonical(budgeted) == _canonical(cold)
        assert budget.iterations > 0

    def test_ceiling_abort_carries_partial_result(self):
        taskset, platform = _fresh()
        with pytest.raises(BudgetExceeded) as info:
            analyze_taskset(
                taskset,
                platform,
                AnalysisConfig(),
                budget=Budget(max_iterations=3),
            )
        abort = info.value
        assert abort.partial is not None
        assert not abort.partial.schedulable
        assert abort.partial.response_times  # estimates reached so far
        assert abort.iterations == 4  # the boundary that fired
        assert abort.elapsed >= 0.0

    def test_cancellation_aborts_the_analysis(self):
        taskset, platform = _fresh()
        token = CancelToken()
        token.cancel()
        with pytest.raises(Cancelled):
            analyze_taskset(
                taskset,
                platform,
                AnalysisConfig(),
                budget=Budget(token=token, wall_check_stride=1),
            )

    def test_wall_abort_with_injected_clock(self):
        taskset, platform = _fresh()
        clock = FakeClock()

        class ExpiringClock(FakeClock):
            def __call__(self):
                self.now += 1.0
                return self.now

        with pytest.raises(BudgetExceeded, match="wall-clock"):
            analyze_taskset(
                taskset,
                platform,
                AnalysisConfig(),
                budget=Budget(
                    wall_seconds=0.5,
                    clock=ExpiringClock(),
                    wall_check_stride=1,
                ),
            )
        del clock


class TestAbortLeavesCachesSound:
    """The property: abort anywhere, rerun bit-identically."""

    @pytest.mark.parametrize("seed,utilization", [(3, 0.4), (7, 0.6)])
    def test_every_boundary(self, seed, utilization):
        platform = default_platform()
        config = AnalysisConfig()
        cold_set = generate_taskset(random.Random(seed), platform, utilization)
        cold = analyze_taskset(cold_set, platform, config)
        probe = Budget(max_iterations=10**9)
        reference_set = generate_taskset(
            random.Random(seed), platform, utilization
        )
        reference = analyze_taskset(
            reference_set, platform, config, budget=probe
        )
        assert _canonical(reference) == _canonical(cold)
        total_ticks = probe.iterations
        assert total_ticks > 1
        for ceiling in range(1, total_ticks):
            taskset = generate_taskset(
                random.Random(seed), platform, utilization
            )
            with pytest.raises(BudgetExceeded):
                analyze_taskset(
                    taskset,
                    platform,
                    config,
                    budget=Budget(max_iterations=ceiling),
                )
            rerun = analyze_taskset(taskset, platform, config)
            # Bit-identical to the cold analysis: same verdict, same
            # per-task bounds, same outer iteration count.
            assert _canonical(rerun) == _canonical(
                cold
            ), f"rerun differs after abort at {ceiling}"
            # And genuinely cold: the abort never planted a warm seed.
            assert rerun.perf.warm_starts == 0

    def test_abort_points_are_deterministic_across_kernels(self):
        # The ceiling counts inner iterations — identical across the
        # memoization/bitset kernel variants — so the same ceiling aborts
        # with the same partial estimates everywhere.
        platform = default_platform()
        partials = []
        for memo in (True, False):
            for bitset in (True, False):
                taskset = generate_taskset(random.Random(13), platform, 0.5)
                config = AnalysisConfig(memoization=memo, bitset_kernel=bitset)
                with pytest.raises(BudgetExceeded) as info:
                    analyze_taskset(
                        taskset,
                        platform,
                        config,
                        budget=Budget(max_iterations=7),
                    )
                partials.append(
                    (info.value.iterations, _canonical(info.value.partial))
                )
        assert len(set(partials)) == 1


class TestBudgetChild:
    """Slices of a budget can never exceed their parent."""

    def test_fraction_validation(self):
        budget = Budget(max_iterations=10)
        for bad in (0, -0.5, 1.5):
            with pytest.raises(AnalysisError):
                budget.child(bad)

    def test_wall_slice_of_the_remaining_allowance(self):
        clock = FakeClock()
        parent = Budget(wall_seconds=10.0, clock=clock).start()
        clock.now = 4.0  # 6 seconds left
        child = parent.child(0.5)
        assert child.wall_seconds == pytest.approx(3.0)
        assert child.started  # anchored at the slice point
        assert child.remaining() == pytest.approx(3.0)

    def test_min_seconds_floor_is_capped_at_the_remaining(self):
        clock = FakeClock()
        parent = Budget(wall_seconds=10.0, clock=clock).start()
        clock.now = 9.0  # 1 second left
        child = parent.child(0.5, min_seconds=5.0)
        # The floor lifts the slice above 0.5s but can never mint time
        # the parent does not have.
        assert child.wall_seconds == pytest.approx(1.0)

    def test_iteration_slice_of_the_remaining_ceiling(self):
        parent = Budget(max_iterations=100)
        for _ in range(40):
            parent.tick()
        child = parent.child(0.5)
        assert child.max_iterations == 30  # half of the 60 left

    def test_child_ticks_charge_the_parent(self):
        parent = Budget(max_iterations=100)
        child = parent.child(0.5)
        for _ in range(10):
            child.tick()
        assert parent.iterations == 10

    def test_parent_ceiling_fires_inside_the_child(self):
        parent = Budget(max_iterations=10)
        for _ in range(8):
            parent.tick()
        child = parent.child(1.0)  # 2 iterations left in the parent
        child.tick()
        child.tick()
        with pytest.raises(BudgetExceeded, match="ceiling of 10"):
            child.tick()

    def test_parent_wall_fires_inside_the_child(self):
        clock = FakeClock()
        parent = Budget(
            wall_seconds=10.0, clock=clock, wall_check_stride=1
        ).start()
        clock.now = 6.0
        child = parent.child(1.0, min_seconds=100.0)
        # The child's own allowance is capped at the 4s left; advancing
        # past the parent's deadline aborts through the chained check.
        clock.now = 10.5
        with pytest.raises(BudgetExceeded):
            child.tick()

    def test_exhausted_parent_cannot_be_sliced(self):
        clock = FakeClock()
        parent = Budget(wall_seconds=5.0, clock=clock).start()
        clock.now = 6.0
        with pytest.raises(BudgetExceeded, match="exhausted"):
            parent.child(0.5)
        drained = Budget(max_iterations=1)
        drained.tick()
        with pytest.raises(BudgetExceeded, match="exhausted"):
            drained.child(0.5)

    def test_unlimited_parent_stays_unlimited(self):
        child = Budget().child(0.25)
        assert child.wall_seconds is None
        assert child.max_iterations is None

    def test_cancel_token_is_shared(self):
        token = CancelToken()
        parent = Budget(max_iterations=100, token=token)
        child = parent.child(0.5)
        token.cancel()
        with pytest.raises(Cancelled):
            child.tick()

    def test_grandchild_chains_to_the_root(self):
        root = Budget(max_iterations=100)
        grandchild = root.child(0.5).child(0.5)
        for _ in range(5):
            grandchild.tick()
        assert root.iterations == 5
