"""End-to-end kill/resume test: SIGTERM a journaled sweep, resume it.

Exercises the full promise of ``docs/RESILIENCE.md`` through the real
CLI in a subprocess: the interrupted run exits with code 130 after
flushing its journal, and ``--resume`` reproduces the uninterrupted
report bit for bit.  The test is robust to scheduling noise — if the
victim happens to finish before the signal lands, the resume degenerates
to a pure journal replay, which must *still* be bit-identical.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

ARGS = [sys.executable, "-m", "repro.experiments", "fig2", "--samples", "30"]

ENV = dict(
    os.environ,
    PYTHONPATH=str(ROOT / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)


def _run(extra):
    return subprocess.run(
        ARGS + extra, cwd=ROOT, env=ENV, capture_output=True, text=True,
        timeout=600,
    )


def _figure_lines(text):
    return [line for line in text.splitlines() if not line.startswith("[")]


def test_sigterm_then_resume_is_bit_identical(tmp_path):
    journal = str(tmp_path)
    victim = subprocess.Popen(
        ARGS + ["--journal", journal],
        cwd=ROOT,
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    time.sleep(2.0)
    victim.send_signal(signal.SIGTERM)
    _stdout, stderr = victim.communicate(timeout=120)
    if victim.returncode == 130:
        assert "interrupted" in stderr and "journal flushed" in stderr
        assert "--resume" in stderr  # tells the user how to continue
    else:
        # Finished before the signal landed: resume is then a pure replay.
        assert victim.returncode == 0
    journal_files = list(tmp_path.glob("*.jsonl"))
    assert journal_files, "journal file must survive the kill"

    uninterrupted = _run([])
    assert uninterrupted.returncode == 0
    resumed = _run(["--journal", journal, "--resume"])
    assert resumed.returncode == 0, resumed.stderr
    assert _figure_lines(resumed.stdout) == _figure_lines(uninterrupted.stdout)


def test_resume_under_stealing_and_different_jobs_is_bit_identical(tmp_path):
    """Journal fingerprints and ``--resume`` survive adaptive chunking.

    The interrupted run executes with ``--jobs 3`` — guided chunk sizes,
    worker-resident state and possibly tail work stealing — and the resume
    with ``--jobs 2``, a different partitioning again.  Chunk boundaries
    are not part of the journal fingerprint and per-sample seeds are
    order-independent, so the stitched report must equal the sequential
    uninterrupted one bit for bit.
    """
    journal = str(tmp_path)
    victim = subprocess.Popen(
        ARGS + ["--journal", journal, "--jobs", "3"],
        cwd=ROOT,
        env=ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    time.sleep(2.0)
    victim.send_signal(signal.SIGTERM)
    _stdout, stderr = victim.communicate(timeout=120)
    if victim.returncode == 130:
        assert "journal flushed" in stderr
    else:
        # Finished before the signal landed: resume is then a pure replay.
        assert victim.returncode == 0
    assert list(tmp_path.glob("*.jsonl")), "journal file must survive the kill"
    resumed = _run(["--journal", journal, "--resume", "--jobs", "2"])
    assert resumed.returncode == 0, resumed.stderr
    uninterrupted = _run([])
    assert uninterrupted.returncode == 0
    assert _figure_lines(resumed.stdout) == _figure_lines(uninterrupted.stdout)
