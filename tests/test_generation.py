"""Unit tests for task-set generation (UUnifast + placement + timing)."""

import random

import pytest

from repro.data.benchmarks import benchmark_spec, benchmark_table
from repro.errors import GenerationError
from repro.generation.taskset_gen import (
    GenerationConfig,
    ParameterSource,
    PlacementPolicy,
    generate_taskset,
)
from repro.generation.uunifast import uunifast
from repro.model.platform import CacheGeometry, Platform


class TestUUnifast:
    def test_sums_to_target(self):
        rng = random.Random(1)
        for total in (0.1, 0.5, 1.0, 3.0):
            utils = uunifast(rng, 8, total)
            assert sum(utils) == pytest.approx(total)

    def test_count(self):
        assert len(uunifast(random.Random(2), 5, 0.8)) == 5

    def test_all_positive(self):
        for seed in range(20):
            utils = uunifast(random.Random(seed), 8, 0.9)
            assert all(u > 0 for u in utils)

    def test_single_task(self):
        assert uunifast(random.Random(3), 1, 0.7) == [0.7]

    def test_deterministic_given_seed(self):
        assert uunifast(random.Random(42), 6, 0.5) == uunifast(
            random.Random(42), 6, 0.5
        )

    def test_rejects_bad_inputs(self):
        rng = random.Random(4)
        with pytest.raises(GenerationError):
            uunifast(rng, 0, 0.5)
        with pytest.raises(GenerationError):
            uunifast(rng, 4, 0)
        with pytest.raises(GenerationError):
            uunifast(rng, 2, 3.0)


@pytest.fixture()
def platform():
    return Platform(num_cores=4, d_mem=10)


class TestGenerateTaskset:
    def test_default_size(self, platform):
        taskset = generate_taskset(random.Random(1), platform, 0.5)
        assert len(taskset) == 32
        for core in platform.cores:
            assert len(taskset.on_core(core)) == 8

    def test_priorities_unique_and_deadline_monotonic(self, platform):
        taskset = generate_taskset(random.Random(2), platform, 0.5)
        deadlines = [t.deadline for t in taskset]  # priority order
        assert deadlines == sorted(deadlines)

    def test_per_core_utilization_close_to_target(self, platform):
        taskset = generate_taskset(random.Random(3), platform, 0.6)
        for core in platform.cores:
            # Rounding periods to integers perturbs utilisation slightly.
            assert taskset.core_utilization(core, platform.d_mem) == pytest.approx(
                0.6, abs=0.02
            )

    def test_implicit_deadlines(self, platform):
        taskset = generate_taskset(random.Random(4), platform, 0.4)
        assert all(t.deadline == t.period for t in taskset)

    def test_footprints_match_specs(self, platform):
        taskset = generate_taskset(random.Random(5), platform, 0.4)
        for task in taskset:
            spec = benchmark_spec(task.name.split("#")[0])
            assert len(task.ecbs) == min(spec.n_ecb, platform.cache.num_sets)
            assert len(task.ucbs) == min(spec.n_ucb, len(task.ecbs))
            assert len(task.pcbs) == min(spec.n_pcb, len(task.ecbs))
            assert task.md == spec.md
            assert task.md_r == spec.md_r
            assert task.pd == spec.pd

    def test_deterministic_given_seed(self, platform):
        a = generate_taskset(random.Random(7), platform, 0.5)
        b = generate_taskset(random.Random(7), platform, 0.5)
        assert [t.name for t in a] == [t.name for t in b]
        assert [t.period for t in a] == [t.period for t in b]
        assert [sorted(t.ecbs) for t in a] == [sorted(t.ecbs) for t in b]

    def test_period_at_least_isolated_wcet(self, platform):
        # Near-saturated cores force the period floor to kick in.
        taskset = generate_taskset(random.Random(8), platform, 0.999)
        for task in taskset:
            assert task.period >= task.isolated_wcet(platform.d_mem)

    def test_rejects_bad_utilization(self, platform):
        with pytest.raises(GenerationError):
            generate_taskset(random.Random(9), platform, 0)

    def test_benchmark_restriction(self, platform):
        config = GenerationConfig(benchmarks=("lcdnum", "fdct"))
        taskset = generate_taskset(random.Random(10), platform, 0.5, config)
        assert {t.name.split("#")[0] for t in taskset} <= {"lcdnum", "fdct"}

    def test_unknown_benchmark_rejected(self, platform):
        config = GenerationConfig(benchmarks=("quake",))
        with pytest.raises(GenerationError):
            generate_taskset(random.Random(11), platform, 0.5, config)

    def test_rejects_bad_tasks_per_core(self):
        with pytest.raises(GenerationError):
            GenerationConfig(tasks_per_core=0)


class TestPlacement:
    def test_zero_start_places_prefix_runs(self, platform):
        config = GenerationConfig(placement=PlacementPolicy.ZERO_START)
        taskset = generate_taskset(random.Random(1), platform, 0.5, config)
        for task in taskset:
            assert min(task.ecbs) == 0
            # Consecutive run from zero.
            assert task.ecbs == frozenset(range(len(task.ecbs)))

    def test_random_start_runs_are_consecutive_mod_cache(self, platform):
        taskset = generate_taskset(random.Random(2), platform, 0.5)
        size = platform.cache.num_sets
        for task in taskset:
            if len(task.ecbs) == size:
                continue
            ordered = sorted(task.ecbs)
            # A consecutive run modulo `size` has exactly one gap > 1 when
            # it wraps, zero otherwise.
            gaps = sum(
                1
                for a, b in zip(ordered, ordered[1:] + [ordered[0] + size])
                if b - a != 1
            )
            assert gaps <= 1

    def test_subsets_within_run(self, platform):
        taskset = generate_taskset(random.Random(3), platform, 0.5)
        for task in taskset:
            assert task.ucbs <= task.ecbs
            assert task.pcbs <= task.ecbs


class TestParameterSources:
    def test_models_source_uses_geometry(self):
        tiny = Platform(num_cores=2, d_mem=10, cache=CacheGeometry(num_sets=32))
        config = GenerationConfig(parameter_source=ParameterSource.MODELS)
        taskset = generate_taskset(random.Random(4), tiny, 0.3, config)
        for task in taskset:
            assert len(task.ecbs) <= 32

    def test_hybrid_equals_table_at_reference_geometry(self):
        reference = Platform(num_cores=2, d_mem=10)
        config = GenerationConfig(parameter_source=ParameterSource.HYBRID)
        taskset = generate_taskset(random.Random(5), reference, 0.3, config)
        for task in taskset:
            spec = benchmark_spec(task.name.split("#")[0])
            assert task.md == spec.md
            assert task.md_r == spec.md_r

    def test_hybrid_scales_demand_with_cache_size(self):
        small = Platform(num_cores=2, d_mem=10, cache=CacheGeometry(num_sets=32))
        config = GenerationConfig(
            parameter_source=ParameterSource.HYBRID, benchmarks=("fdct",)
        )
        taskset = generate_taskset(random.Random(6), small, 0.3, config)
        spec = benchmark_spec("fdct")
        for task in taskset:
            # At 32 sets fdct's conflicting regions collide much more.
            assert task.md >= spec.md

    def test_hybrid_md_r_consistent(self):
        for sets in (32, 128, 1024):
            plat = Platform(num_cores=2, d_mem=10, cache=CacheGeometry(num_sets=sets))
            config = GenerationConfig(parameter_source=ParameterSource.HYBRID)
            taskset = generate_taskset(random.Random(7), plat, 0.3, config)
            for task in taskset:
                assert 0 <= task.md_r <= task.md


class TestBenchmarkTableAccess:
    def test_spec_lookup(self):
        spec = benchmark_spec("statemate")
        assert spec.n_ecb == 256

    def test_unknown_spec(self):
        with pytest.raises(GenerationError):
            benchmark_spec("nothere")

    def test_table_is_cached(self):
        assert benchmark_table() is benchmark_table()
