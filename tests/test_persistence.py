"""Unit tests for multi-job demand (Eq. 10) and CPRO (Eq. 14)."""

import pytest

from repro.errors import AnalysisError
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import (
    CproApproach,
    CproCalculator,
    cpro_eviction_count_global,
    cpro_eviction_count_union,
)
from repro.persistence.demand import multi_job_demand


def make_task(name, priority, core=0, md=10, md_r=3, ecbs=(), pcbs=()):
    return Task(
        name=name,
        pd=10,
        md=md,
        md_r=md_r,
        period=1000,
        deadline=1000,
        priority=priority,
        core=core,
        ecbs=frozenset(ecbs),
        pcbs=frozenset(pcbs),
    )


class TestMultiJobDemand:
    def test_zero_jobs(self):
        assert multi_job_demand(make_task("t", 1, ecbs={1}, pcbs={1}), 0) == 0

    def test_single_job_is_md(self):
        task = make_task("t", 1, md=10, md_r=3, ecbs=set(range(8)), pcbs=set(range(8)))
        # min(10, 3 + 8) = 10.
        assert multi_job_demand(task, 1) == 10

    def test_many_jobs_amortise_pcb_loads(self):
        task = make_task("t", 1, md=10, md_r=3, ecbs=set(range(8)), pcbs=set(range(8)))
        # min(5*10, 5*3 + 8) = 23.
        assert multi_job_demand(task, 5) == 23

    def test_never_exceeds_oblivious_bound(self):
        task = make_task("t", 1, md=10, md_r=9, ecbs=set(range(20)), pcbs=set(range(20)))
        for n in range(0, 30):
            assert multi_job_demand(task, n) <= n * task.md

    def test_no_pcbs_degenerates_to_residual_rate(self):
        task = make_task("t", 1, md=10, md_r=10)
        assert multi_job_demand(task, 7) == 70

    def test_monotone_in_job_count(self):
        task = make_task("t", 1, md=12, md_r=2, ecbs=set(range(6)), pcbs=set(range(6)))
        values = [multi_job_demand(task, n) for n in range(12)]
        assert values == sorted(values)

    def test_rejects_negative_jobs(self):
        with pytest.raises(AnalysisError):
            multi_job_demand(make_task("t", 1), -1)

    def test_matches_paper_fig1(self):
        tau1 = make_task(
            "tau1",
            1,
            md=6,
            md_r=1,
            ecbs={5, 6, 7, 8, 9, 10},
            pcbs={5, 6, 7, 8, 10},
        )
        assert multi_job_demand(tau1, 3) == 8  # 6 + 1 + 1


@pytest.fixture()
def core_tasks():
    t1 = make_task("t1", 1, ecbs={1, 2, 3}, pcbs={1, 2})
    t2 = make_task("t2", 2, ecbs={2, 3, 4}, pcbs={4})
    t3 = make_task("t3", 3, ecbs={4, 5, 6}, pcbs={5, 6})
    t4 = make_task("t4", 4, core=1, ecbs={1, 2, 5, 6}, pcbs={1, 2})
    return TaskSet([t1, t2, t3, t4]), t1, t2, t3, t4


class TestCproEvictionCounts:
    def test_union_restricted_to_hep_window(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        # PCBs of t1 = {1,2}; in the window of t2 only hep(2)\{t1} = {t2}
        # runs on core 0: ECB_2 = {2,3,4} -> overlap {2}.
        assert cpro_eviction_count_union(taskset, t1, t2) == 1
        # In the window of t3, hep(3)\{t1} = {t2, t3}: union {2,3,4,5,6}.
        assert cpro_eviction_count_union(taskset, t1, t3) == 1

    def test_union_excludes_other_cores(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        # t4 is on core 1; its PCBs {1,2} overlap t1's ECBs, but t1 is on
        # core 0 so it cannot evict them.
        assert cpro_eviction_count_union(taskset, t4, t4) == 0

    def test_union_excludes_self(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        # For t3's own window, hep(3)\{t3} on core 0 = {t1, t2}: union
        # {1,2,3,4}; PCB_3 = {5,6} -> no overlap.
        assert cpro_eviction_count_union(taskset, t3, t3) == 0

    def test_global_dominates_union(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        for task_j in (t1, t2, t3):
            for task_i in (t1, t2, t3):
                assert cpro_eviction_count_global(
                    taskset, task_j, task_i
                ) >= cpro_eviction_count_union(taskset, task_j, task_i)

    def test_global_independent_of_window(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        values = {
            cpro_eviction_count_global(taskset, t1, other)
            for other in (t1, t2, t3)
        }
        assert len(values) == 1

    def test_single_task_core_has_no_evictions(self):
        alone = make_task("alone", 1, ecbs={1, 2}, pcbs={1, 2})
        taskset = TaskSet([alone])
        assert cpro_eviction_count_union(taskset, alone, alone) == 0
        assert cpro_eviction_count_global(taskset, alone, alone) == 0


class TestCproCalculator:
    def test_rho_zero_for_single_job(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        calc = CproCalculator(taskset)
        assert calc.rho(t1, t2, 0) == 0
        assert calc.rho(t1, t2, 1) == 0

    def test_rho_scales_linearly(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        calc = CproCalculator(taskset)
        count = calc.eviction_count(t1, t2)
        assert calc.rho(t1, t2, 4) == 3 * count

    def test_rho_rejects_negative(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        with pytest.raises(AnalysisError):
            CproCalculator(taskset).rho(t1, t2, -2)

    def test_none_approach(self, core_tasks):
        taskset, t1, t2, t3, t4 = core_tasks
        calc = CproCalculator(taskset, CproApproach.NONE)
        assert calc.rho(t1, t2, 100) == 0

    def test_matches_paper_fig1(self):
        tau1 = make_task(
            "tau1", 1, md=6, md_r=1,
            ecbs={5, 6, 7, 8, 9, 10}, pcbs={5, 6, 7, 8, 10},
        )
        tau2 = make_task("tau2", 2, md=8, md_r=8, ecbs={1, 2, 3, 4, 5, 6})
        taskset = TaskSet([tau1, tau2])
        calc = CproCalculator(taskset)
        assert calc.rho(tau1, tau2, 3) == 4

    def test_approach_property(self, core_tasks):
        taskset, _, _, _, _ = core_tasks
        assert CproCalculator(taskset).approach is CproApproach.UNION
