"""Unit tests of the packed-bitmask interference table.

The bitmask kernel (:mod:`repro.model.interference`) must agree with the
``frozenset`` reference path on *every* input, including the edges where a
packed-integer implementation classically goes wrong: empty block sets,
cache-set indices crossing the 64-bit word boundary, and degenerate task
groups (a core with a single task has nobody to evict anything).  The
broad differential grids live in ``tests/test_differential.py``; this file
pins the edge cases down directly at the table level.
"""

import pytest

from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.errors import ModelError
from repro.model.interference import (
    InterferenceTable,
    blocks_to_mask,
    mask_to_blocks,
)
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import (
    CproApproach,
    CproCalculator,
    cpro_eviction_count_global,
    cpro_eviction_count_union,
    evicting_ecb_union,
)


def _task(name, priority, core=0, ecbs=(), ucbs=(), pcbs=()):
    return Task(
        name=name,
        pd=100,
        md=10,
        md_r=5,
        period=1000,
        deadline=1000,
        priority=priority,
        core=core,
        ecbs=frozenset(ecbs),
        ucbs=frozenset(ucbs),
        pcbs=frozenset(pcbs),
    )


class TestMaskPacking:
    def test_round_trip_small_indices(self):
        blocks = frozenset({0, 3, 17})
        assert mask_to_blocks(blocks_to_mask(blocks)) == blocks

    def test_empty_set_packs_to_zero(self):
        assert blocks_to_mask(()) == 0
        assert mask_to_blocks(0) == frozenset()

    def test_word_boundary_indices(self):
        # Indices straddling the 64-bit limb boundary and far beyond it:
        # Python ints have no word size, so nothing special may happen.
        blocks = frozenset({0, 63, 64, 127, 128, 1000})
        mask = blocks_to_mask(blocks)
        assert mask.bit_count() == len(blocks)
        assert mask_to_blocks(mask) == blocks

    def test_intersection_cardinality_across_words(self):
        a = blocks_to_mask({63, 64, 65, 500})
        b = blocks_to_mask({64, 500, 501})
        assert (a & b).bit_count() == len(
            frozenset({63, 64, 65, 500}) & frozenset({64, 500, 501})
        )

    def test_negative_index_rejected(self):
        with pytest.raises(ModelError):
            blocks_to_mask({1, -1})


class TestInterferenceTableEdges:
    def test_empty_ecb_and_pcb_sets(self):
        # Tasks with no cache footprint at all: every mask is zero, every
        # cardinality zero, and both kernels agree on the eviction counts.
        tasks = (_task("a", 1), _task("b", 2), _task("c", 3))
        taskset = TaskSet(tasks)
        table = InterferenceTable(taskset)
        assert table.ecb_mask == {1: 0, 2: 0, 3: 0}
        assert table.pcb_mask == {1: 0, 2: 0, 3: 0}
        a, _, c = tasks
        assert table.hep_ecb_mask(c, 0) == 0
        for approach in CproApproach:
            bitset = CproCalculator(taskset, approach, bitset=True)
            reference = CproCalculator(taskset, approach, bitset=False)
            assert bitset.eviction_count(c, a) == reference.eviction_count(c, a)
            assert bitset.eviction_count(c, a) == 0

    def test_pcbs_with_empty_evictors(self):
        # The PCB owner is the only task with any cache footprint: the
        # evicting union is empty, so nothing can be evicted.
        tasks = (
            _task("a", 1),
            _task("b", 2),
            _task("c", 3, ecbs={5}, pcbs={5}),
        )
        taskset = TaskSet(tasks)
        table = InterferenceTable(taskset)
        assert table.pcb_mask[3] == blocks_to_mask({5})
        a, _, c = tasks
        assert table.evicting_ecb_mask(c, a) == 0
        for approach in CproApproach:
            bitset = CproCalculator(taskset, approach, bitset=True)
            reference = CproCalculator(taskset, approach, bitset=False)
            assert bitset.eviction_count(c, a) == reference.eviction_count(c, a)
            assert bitset.eviction_count(c, a) == 0

    def test_blocks_beyond_word_boundary_match_reference(self):
        # ECB/UCB/PCB indices spread across several 64-bit limbs; the
        # eviction and CRPD counts must match the frozenset reference.
        tasks = (
            _task("hi", 1, ecbs={0, 63, 64}, ucbs={64}, pcbs={63}),
            _task(
                "mid",
                2,
                ecbs={64, 127, 128, 1000},
                ucbs={127},
                pcbs={64, 1000},
            ),
            _task("lo", 3, ecbs={0, 63, 127, 1000}, ucbs={1000}, pcbs={0, 127}),
        )
        taskset = TaskSet(tasks)
        hi, mid, lo = tasks
        for task_j in tasks:
            for task_i in tasks:
                if task_j is task_i:
                    continue
                bitset = CproCalculator(taskset, CproApproach.UNION, bitset=True)
                assert bitset.eviction_count(
                    task_j, task_i
                ) == cpro_eviction_count_union(taskset, task_j, task_i)
                coarse = CproCalculator(
                    taskset, CproApproach.GLOBAL, bitset=True
                )
                assert coarse.eviction_count(
                    task_j, task_i
                ) == cpro_eviction_count_global(taskset, task_j, task_i)
        crpd_bit = CrpdCalculator(taskset, CrpdApproach.ECB_UNION, bitset=True)
        crpd_ref = CrpdCalculator(taskset, CrpdApproach.ECB_UNION, bitset=False)
        assert crpd_bit.gamma(lo, hi) == crpd_ref.gamma(lo, hi)
        assert crpd_bit.gamma(lo, mid) == crpd_ref.gamma(lo, mid)

    def test_single_task_core_has_no_evictors(self):
        # One task per core: hep/evicting unions over "the others" are
        # empty, so every eviction count and CRPD value must be zero.
        tasks = (
            _task("solo0", 1, core=0, ecbs={1, 2}, ucbs={1}, pcbs={2}),
            _task("solo1", 2, core=1, ecbs={2, 3}, ucbs={3}, pcbs={2}),
        )
        taskset = TaskSet(tasks)
        table = InterferenceTable(taskset)
        solo0, solo1 = tasks
        assert table.evicting_ecb_mask(solo0, solo0) == 0
        assert table.core_ecb_mask_excluding(solo0) == 0
        for approach in CproApproach:
            calculator = CproCalculator(taskset, approach, bitset=True)
            assert calculator.eviction_count(solo0, solo0) == 0
            assert calculator.rho(solo0, solo0, 5) == 0

    def test_shared_table_is_built_once_per_taskset(self):
        taskset = TaskSet((_task("a", 1, ecbs={1}), _task("b", 2, ecbs={2})))
        first = InterferenceTable.shared(taskset)
        second = InterferenceTable.shared(taskset)
        assert first is second

    def test_evicting_union_helper_matches_manual_fold(self):
        tasks = (_task("a", 1, ecbs={1, 64}), _task("b", 2, ecbs={64, 200}))
        assert evicting_ecb_union(tasks) == frozenset({1, 64, 200})
        assert evicting_ecb_union(()) == frozenset()


class TestKernelSelection:
    def test_shared_calculators_keyed_by_kernel(self):
        # The two kernels must not share cache state: a bitset calculator
        # and a reference calculator for the same approach are distinct.
        taskset = TaskSet((_task("a", 1, ecbs={1}), _task("b", 2, ecbs={2})))
        bit = CproCalculator.shared(taskset, CproApproach.UNION, bitset=True)
        ref = CproCalculator.shared(taskset, CproApproach.UNION, bitset=False)
        assert bit is not ref
        assert bit.bitset and not ref.bitset
        assert bit is CproCalculator.shared(
            taskset, CproApproach.UNION, bitset=True
        )
        crpd_bit = CrpdCalculator.shared(
            taskset, CrpdApproach.ECB_UNION, bitset=True
        )
        crpd_ref = CrpdCalculator.shared(
            taskset, CrpdApproach.ECB_UNION, bitset=False
        )
        assert crpd_bit is not crpd_ref
