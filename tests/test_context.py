"""Unit tests for the shared analysis context."""

import pytest

from repro.businterference.context import AnalysisContext
from repro.crpd.approaches import CrpdApproach, CrpdCalculator
from repro.errors import AnalysisError
from repro.model.platform import Platform
from repro.model.task import Task, TaskSet
from repro.persistence.cpro import CproApproach, CproCalculator


@pytest.fixture()
def system():
    task = Task(name="t", pd=100, md=7, period=1000, deadline=1000, priority=1)
    taskset = TaskSet([task])
    platform = Platform(num_cores=1, d_mem=10)
    return taskset, platform, task


class TestDefaults:
    def test_default_calculators_match_paper(self, system):
        taskset, platform, task = system
        ctx = AnalysisContext(taskset=taskset, platform=platform)
        assert ctx.crpd.approach is CrpdApproach.ECB_UNION
        assert ctx.cpro.approach is CproApproach.UNION
        assert ctx.persistence is True
        assert ctx.persistence_in_low is False
        assert ctx.tdma_slot_alignment is False

    def test_custom_calculators_kept(self, system):
        taskset, platform, task = system
        crpd = CrpdCalculator(taskset, CrpdApproach.NONE)
        cpro = CproCalculator(taskset, CproApproach.GLOBAL)
        ctx = AnalysisContext(
            taskset=taskset, platform=platform, crpd=crpd, cpro=cpro
        )
        assert ctx.crpd is crpd
        assert ctx.cpro is cpro


class TestResponseTimes:
    def test_fallback_is_isolated_wcet(self, system):
        taskset, platform, task = system
        ctx = AnalysisContext(taskset=taskset, platform=platform)
        assert ctx.response_time(task) == 100 + 7 * 10

    def test_set_and_get(self, system):
        taskset, platform, task = system
        ctx = AnalysisContext(taskset=taskset, platform=platform)
        ctx.set_response_time(task, 512)
        assert ctx.response_time(task) == 512

    def test_rejects_negative_estimate(self, system):
        taskset, platform, task = system
        ctx = AnalysisContext(taskset=taskset, platform=platform)
        with pytest.raises(AnalysisError):
            ctx.set_response_time(task, -1)
