"""Crash-safety tests of :mod:`repro.atomicio`.

Every JSON artifact the repo persists (saved task sets, corpus entries,
benchmark thresholds) goes through the atomic tmp+fsync+rename recipe, so
a reader can never observe a truncated file and a failed write leaves the
previous contents intact.
"""

import json
import os
import random
from unittest import mock

import pytest

from repro.atomicio import atomic_write_json, atomic_write_text
from repro.experiments import default_platform
from repro.generation import generate_taskset
from repro.serialization import load_taskset, save_taskset


class TestAtomicWrite:
    def test_writes_new_file(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello")
        assert target.read_text() == "hello"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_json_form_appends_newline(self, tmp_path):
        target = tmp_path / "doc.json"
        atomic_write_json(target, {"b": 2, "a": 1}, indent=2, sort_keys=True)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_failed_write_leaves_target_and_no_droppings(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with mock.patch("os.replace", side_effect=OSError("disk full")):
            with pytest.raises(OSError):
                atomic_write_text(target, "half-")
        assert target.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]  # tmp file cleaned up

    def test_no_temporary_survives_a_successful_write(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "done")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_fsync_failure_before_rename_leaves_target_intact(self, tmp_path):
        # A write that dies *before* the rename barrier (fsync error, disk
        # pulled) must behave like the crash the result cache's chaos
        # harness injects: old contents stay, the tmp file is removed.
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with mock.patch("os.fsync", side_effect=OSError("I/O error")):
            with pytest.raises(OSError):
                atomic_write_text(target, "half-")
        assert target.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_interrupt_mid_write_leaves_target_intact(self, tmp_path):
        # BaseException (KeyboardInterrupt, SystemExit) takes the same
        # cleanup path as OSError — a Ctrl-C'd sweep leaves no droppings.
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with mock.patch("os.fsync", side_effect=KeyboardInterrupt):
            with pytest.raises(KeyboardInterrupt):
                atomic_write_text(target, "half-")
        assert target.read_text() == "precious"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestSaveTasksetIsAtomic:
    def test_round_trip_still_exact(self, tmp_path):
        platform = default_platform()
        taskset = generate_taskset(random.Random(9), platform, 0.4)
        path = tmp_path / "set.json"
        save_taskset(taskset, platform, path)
        loaded, loaded_platform = load_taskset(path)
        assert [t.name for t in loaded] == [t.name for t in taskset]
        assert loaded_platform == platform

    def test_failed_save_preserves_the_previous_file(self, tmp_path):
        platform = default_platform()
        taskset = generate_taskset(random.Random(9), platform, 0.4)
        path = tmp_path / "set.json"
        save_taskset(taskset, platform, path)
        before = path.read_text()
        with mock.patch("os.replace", side_effect=OSError("kill -9")):
            with pytest.raises(OSError):
                save_taskset(taskset, platform, path)
        assert path.read_text() == before
