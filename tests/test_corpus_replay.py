"""Replay the checked-in seed corpus on every test run.

Each entry under ``tests/corpus/`` is a previously validated (or previously
failing, now fixed) scenario together with the oracles it must satisfy.
Replaying them turns every captured reproducer into a permanent regression
test: a change that reintroduces an unsoundness fails here with the exact
minimal case that exposed it.
"""

from pathlib import Path

import pytest

from repro.verify.corpus import load_corpus, replay_corpus, replay_entry

CORPUS_DIR = Path(__file__).parent / "corpus"

_ENTRIES = load_corpus(CORPUS_DIR)


def test_seed_corpus_is_present():
    """The repository ships a non-empty seed corpus covering every kind."""
    assert len(_ENTRIES) >= 6
    kinds = {entry.case.kind for _, entry in _ENTRIES}
    assert kinds == {"taskset", "demand", "scenario"}


@pytest.mark.parametrize(
    "path,entry",
    _ENTRIES,
    ids=[path.stem for path, _ in _ENTRIES],
)
def test_corpus_entry_replays_clean(path, entry):
    outcome = replay_entry(entry)
    failures = {name: msgs for name, msgs in outcome.items() if msgs}
    assert not failures, f"{path.name}: {failures}"


def test_replay_corpus_aggregate():
    report = replay_corpus(CORPUS_DIR)
    assert report.passed, report.failures
    assert report.entries == len(_ENTRIES)
    assert report.checks >= report.entries
    assert "PASS" in report.render()
