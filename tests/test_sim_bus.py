"""Unit tests for the simulator's bus arbiters."""

import pytest

from repro.model.platform import BusPolicy, Platform
from repro.sim.bus import (
    BusRequest,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    make_arbiter,
)


def request(priority, arrival, core, seq=0):
    return BusRequest(
        priority=priority, arrival=arrival, sequence=seq, core=core
    )


@pytest.fixture()
def platform():
    return Platform(num_cores=4, d_mem=10, slot_size=2)


class TestFixedPriorityArbiter:
    def test_highest_priority_first(self, platform):
        arbiter = FixedPriorityArbiter(platform)
        low = request(5, 0, 0, 1)
        high = request(1, 3, 1, 2)
        arbiter.enqueue(low)
        arbiter.enqueue(high)
        picked, start = arbiter.select(10)
        assert picked is high
        assert start == 10

    def test_fifo_within_priority(self, platform):
        arbiter = FixedPriorityArbiter(platform)
        first = request(3, 0, 0, 1)
        second = request(3, 1, 1, 2)
        arbiter.enqueue(second)
        arbiter.enqueue(first)
        picked, _ = arbiter.select(5)
        assert picked is first

    def test_empty_returns_none(self, platform):
        assert FixedPriorityArbiter(platform).select(0) is None

    def test_selected_request_removed(self, platform):
        arbiter = FixedPriorityArbiter(platform)
        arbiter.enqueue(request(1, 0, 0, 1))
        arbiter.select(0)
        assert not arbiter.has_pending


class TestRoundRobinArbiter:
    def test_rotates_between_cores(self, platform):
        arbiter = RoundRobinArbiter(platform)
        for seq in range(6):
            arbiter.enqueue(request(1, seq, core=seq % 2, seq=seq))
        served_cores = []
        for _ in range(6):
            picked, _ = arbiter.select(0)
            served_cores.append(picked.core)
        # Slot size 2: two transactions per core before the token moves.
        assert served_cores == [0, 0, 1, 1, 0, 1]

    def test_skips_empty_cores(self, platform):
        arbiter = RoundRobinArbiter(platform)
        arbiter.enqueue(request(1, 0, core=3, seq=1))
        picked, start = arbiter.select(7)
        assert picked.core == 3
        assert start == 7

    def test_fifo_within_core(self, platform):
        arbiter = RoundRobinArbiter(platform)
        first = request(9, 0, core=0, seq=1)
        second = request(1, 5, core=0, seq=2)
        arbiter.enqueue(second)
        arbiter.enqueue(first)
        picked, _ = arbiter.select(0)
        assert picked is first  # RR ignores task priority, serves FIFO

    def test_empty_returns_none(self, platform):
        assert RoundRobinArbiter(platform).select(0) is None


class TestTdmaArbiter:
    # Platform: 4 cores, slot 2, d_mem 10 -> windows of 20 cycles,
    # cycle length 80.  Core c owns [20c, 20c+20).

    def test_owner_starts_immediately(self, platform):
        arbiter = TdmaArbiter(platform)
        assert arbiter.earliest_start(0, 5) == 5
        assert arbiter.earliest_start(1, 25) == 25

    def test_foreign_slot_waits_for_window(self, platform):
        arbiter = TdmaArbiter(platform)
        assert arbiter.earliest_start(1, 5) == 20
        assert arbiter.earliest_start(0, 25) == 80

    def test_window_boundaries(self, platform):
        arbiter = TdmaArbiter(platform)
        assert arbiter.earliest_start(0, 0) == 0
        assert arbiter.earliest_start(0, 19) == 19  # still inside, may overrun
        assert arbiter.earliest_start(0, 20) == 80

    def test_wraps_to_next_cycle(self, platform):
        arbiter = TdmaArbiter(platform)
        assert arbiter.earliest_start(2, 75) == 80 + 40

    def test_select_prefers_earliest_eligible(self, platform):
        arbiter = TdmaArbiter(platform)
        core0 = request(9, 0, core=0, seq=1)
        core3 = request(1, 0, core=3, seq=2)
        arbiter.enqueue(core0)
        arbiter.enqueue(core3)
        # At t=61 core 3 owns the bus (window 60..80): it starts now, the
        # core-0 request waits for the next cycle.
        picked, start = arbiter.select(61)
        assert picked is core3
        assert start == 61
        picked2, start2 = arbiter.select(71)
        assert picked2 is core0
        assert start2 == 80

    def test_empty_returns_none(self, platform):
        assert TdmaArbiter(platform).select(0) is None


class TestFactory:
    def test_policies_map_to_arbiters(self, platform):
        assert isinstance(
            make_arbiter(platform.with_bus_policy(BusPolicy.FP)),
            FixedPriorityArbiter,
        )
        assert isinstance(
            make_arbiter(platform.with_bus_policy(BusPolicy.RR)),
            RoundRobinArbiter,
        )
        assert isinstance(
            make_arbiter(platform.with_bus_policy(BusPolicy.TDMA)), TdmaArbiter
        )
        assert make_arbiter(platform.with_bus_policy(BusPolicy.PERFECT)) is None
