"""Property tests for the epoch-keyed memoization layer.

The memoized interference terms (``bao``, ``bao_low``, the multiset CRPD
window term and full ``bas``) cache values keyed by the estimate-revision
epoch of the core they read.  The soundness claim is that arbitrary
interleavings of estimate bumps and queries can never serve a stale entry:
after every single mutation step, a memoized context and a reference
(non-memoized) context over the same task set must agree exactly.

Hypothesis drives the interleavings; any counterexample it finds is a
cache-invalidation bug by construction.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.config import CrpdApproach
from repro.businterference.context import AnalysisContext
from repro.businterference.requests import (
    bao,
    bao_low,
    bas,
    crpd_multiset_window,
)
from repro.crpd.approaches import CrpdCalculator
from repro.verify.generators import random_taskset_case

# A small pool of deterministic adversarial cases; hypothesis picks the
# case and the interleaving.
_CASES = [random_taskset_case(random.Random(seed)) for seed in (0, 1, 2)]


def _fresh_contexts(case):
    """A memoized and a reference context over the same task set."""
    taskset = case.taskset()
    contexts = []
    for memoize in (True, False):
        contexts.append(
            AnalysisContext(
                taskset=taskset,
                platform=case.platform,
                persistence=True,
                crpd=CrpdCalculator.shared(
                    taskset, CrpdApproach.ECB_UNION_MULTISET
                ),
                memoize=memoize,
            )
        )
    return taskset, contexts[0], contexts[1]


# One interleaving step: either bump a task's estimate or run a query.
_STEP = st.tuples(
    st.sampled_from(["bump", "bao", "bao_low", "crpd", "bas"]),
    st.integers(min_value=0, max_value=10 ** 6),  # task selector / seed
    st.integers(min_value=1, max_value=200_000),  # window length / delta
)


@settings(max_examples=40, deadline=None)
@given(
    case_index=st.integers(min_value=0, max_value=len(_CASES) - 1),
    steps=st.lists(_STEP, min_size=1, max_size=30),
)
def test_memoized_terms_never_stale(case_index, steps):
    case = _CASES[case_index]
    taskset, memo, reference = _fresh_contexts(case)
    tasks = list(taskset)
    cores = list(case.platform.cores)
    for op, selector, amount in steps:
        task = tasks[selector % len(tasks)]
        if op == "bump":
            value = int(task.pd + task.md * case.platform.d_mem) + amount
            memo.set_response_time(task, value)
            reference.set_response_time(task, value)
            assert memo.response_time(task) == reference.response_time(task)
            continue
        t = amount
        if op == "bao" or op == "bao_low":
            remote = [c for c in cores if c != task.core]
            core_y = remote[selector % len(remote)]
            fn = bao if op == "bao" else bao_low
            assert fn(memo, core_y, task, t) == fn(reference, core_y, task, t)
        elif op == "crpd":
            other = tasks[(selector // len(tasks)) % len(tasks)]
            assert crpd_multiset_window(
                memo, task, other, t
            ) == crpd_multiset_window(reference, task, other, t)
        else:  # bas
            assert bas(memo, task, t) == bas(reference, task, t)
    # Sanity: the memoized context actually exercised its caches (bas has
    # its own prefetched-row path, so only the other queries count here).
    if any(op in ("bao", "bao_low", "crpd") for op, _, _ in steps):
        perf = memo.perf
        assert (
            perf.bao_hits
            + perf.bao_misses
            + perf.bao_low_hits
            + perf.bao_low_misses
            + perf.crpd_window_hits
            + perf.crpd_window_misses
        ) > 0


@settings(max_examples=25, deadline=None)
@given(
    case_index=st.integers(min_value=0, max_value=len(_CASES) - 1),
    bumps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10 ** 6),
            st.integers(min_value=0, max_value=500_000),
        ),
        min_size=1,
        max_size=20,
    ),
    t=st.integers(min_value=1, max_value=200_000),
)
def test_repeated_query_tracks_every_bump(case_index, bumps, t):
    """Query → bump → query: the second answer must reflect the new
    estimates, i.e. equal a cold reference evaluation (no stale reuse)."""
    case = _CASES[case_index]
    taskset, memo, reference = _fresh_contexts(case)
    tasks = list(taskset)
    cores = list(case.platform.cores)
    for selector, delta in bumps:
        task = tasks[selector % len(tasks)]
        remote = [c for c in cores if c != task.core]
        core_y = remote[selector % len(remote)]
        # Warm the memo caches before the bump...
        bao(memo, core_y, task, t)
        bao_low(memo, core_y, task, t)
        value = int(task.pd + task.md * case.platform.d_mem) + delta
        memo.set_response_time(task, value)
        reference.set_response_time(task, value)
        # ...then require agreement with the reference immediately after.
        assert bao(memo, core_y, task, t) == bao(reference, core_y, task, t)
        assert bao_low(memo, core_y, task, t) == bao_low(
            reference, core_y, task, t
        )
        assert bas(memo, task, t) == bas(reference, task, t)


@settings(max_examples=15, deadline=None)
@given(
    case_index=st.integers(min_value=0, max_value=len(_CASES) - 1),
    t=st.integers(min_value=1, max_value=200_000),
)
def test_epoch_unchanged_when_estimate_identical(case_index, t):
    """Re-setting the same estimate must not invalidate caches (the epoch
    only moves on actual changes) — and must stay correct."""
    case = _CASES[case_index]
    taskset, memo, reference = _fresh_contexts(case)
    task = next(iter(taskset))
    remote = [c for c in case.platform.cores if c != task.core][0]
    memo.set_response_time(task, 12345)
    epoch_before = memo.core_epoch(task.core)
    first = bao(memo, remote, task, t)
    memo.set_response_time(task, 12345)  # no-op revision
    assert memo.core_epoch(task.core) == epoch_before
    assert bao(memo, remote, task, t) == first
    reference.set_response_time(task, 12345)
    assert first == bao(reference, remote, task, t)
