"""Checkpoint journal and fingerprint tests: crash-safe resumable sweeps."""

from dataclasses import replace

import pytest

from repro.errors import JournalError
from repro.experiments.config import (
    SweepSettings,
    default_platform,
    standard_variants,
)
from repro.experiments.journal import (
    RunJournal,
    sweep_description,
    sweep_fingerprint,
)
from repro.experiments.runner import run_curve

SETTINGS = SweepSettings(samples=3, seed=11, utilizations=(0.2, 0.4), jobs=1)
VARIANTS = standard_variants(include_perfect=False)[:2]
PLATFORM = default_platform()


def fingerprint(settings=SETTINGS, platform=PLATFORM, point_offset=0):
    return sweep_fingerprint(platform, VARIANTS, settings, point_offset)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint() == fingerprint()
        assert len(fingerprint()) == 64

    @pytest.mark.parametrize(
        "changed",
        [
            replace(SETTINGS, samples=4),
            replace(SETTINGS, seed=12),
            replace(SETTINGS, utilizations=(0.2, 0.5)),
        ],
    )
    def test_sensitive_to_outcome_determining_settings(self, changed):
        assert fingerprint(changed) != fingerprint()

    def test_sensitive_to_platform_and_offset(self):
        other = PLATFORM.with_num_cores(PLATFORM.num_cores + 2)
        assert fingerprint(platform=other) != fingerprint()
        assert fingerprint(point_offset=1000) != fingerprint()

    @pytest.mark.parametrize(
        "changed",
        [
            replace(SETTINGS, jobs=8),
            replace(SETTINGS, profile=True),
            replace(SETTINGS, timeout=5.0),
            replace(SETTINGS, retries=0),
            replace(SETTINGS, backoff=1.0),
        ],
    )
    def test_insensitive_to_execution_parameters(self, changed):
        # A run interrupted at --jobs 8 must resume at --jobs 2.
        assert fingerprint(changed) == fingerprint()

    def test_description_is_plain_json(self):
        import json

        description = sweep_description(PLATFORM, VARIANTS, SETTINGS, 0)
        assert json.loads(json.dumps(description)) == description


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        fp = fingerprint()
        with RunJournal.open(tmp_path, fp) as journal:
            journal.record_sample(0, 0, 1.25, (True, False))
            journal.record_failure(
                {
                    "point": 0,
                    "sample": 1,
                    "utilization": 0.2,
                    "seed": 99,
                    "failure": "crash",
                    "exception": "WorkerCrashError",
                    "message": "",
                    "traceback_digest": "",
                    "attempts": 3,
                }
            )
        reopened = RunJournal.open(tmp_path, fp)
        assert reopened.completed == {(0, 0): (1.25, (True, False))}
        assert set(reopened.failures) == {(0, 1)}
        assert reopened.failures[(0, 1)]["failure"] == "crash"
        reopened.close()
        reopened.close()  # idempotent

    def test_append_after_close_is_typed_error(self, tmp_path):
        journal = RunJournal.open(tmp_path, fingerprint())
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record_sample(0, 0, 1.0, (True,))

    def test_tolerates_truncated_final_line(self, tmp_path):
        fp = fingerprint()
        with RunJournal.open(tmp_path, fp) as journal:
            journal.record_sample(0, 0, 1.0, (True,))
            journal.record_sample(0, 1, 2.0, (False,))
            path = journal.path
        text = path.read_text()
        path.write_text(text[:-9])  # SIGKILL mid-append
        reopened = RunJournal.open(tmp_path, fp)
        # The torn record simply re-runs on resume.
        assert reopened.completed == {(0, 0): (1.0, (True,))}
        reopened.close()

    def test_rejects_mid_file_corruption(self, tmp_path):
        fp = fingerprint()
        with RunJournal.open(tmp_path, fp) as journal:
            journal.record_sample(0, 0, 1.0, (True,))
            path = journal.path
        lines = path.read_text().splitlines()
        lines.insert(1, "{ not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            RunJournal.open(tmp_path, fp)

    def test_rejects_foreign_fingerprint(self, tmp_path):
        fp = fingerprint()
        RunJournal.open(tmp_path, fp).close()
        other = "f" * 16 + fp[16:]  # same filename prefix, different sweep
        path = tmp_path / f"{fp[:16]}.jsonl"
        path.rename(tmp_path / f"{other[:16]}.jsonl")
        with pytest.raises(JournalError, match="different sweep"):
            RunJournal.open(tmp_path, other)

    def test_rejects_unknown_record_kind(self, tmp_path):
        fp = fingerprint()
        with RunJournal.open(tmp_path, fp) as journal:
            path = journal.path
        with path.open("a") as handle:
            handle.write('{"kind": "telemetry"}\n')
            handle.write('{"kind": "sample", "point": 0}\n')  # never reached
        with pytest.raises(JournalError, match="unknown kind"):
            RunJournal.open(tmp_path, fp)

    def test_headerless_file_treated_as_fresh(self, tmp_path):
        fp = fingerprint()
        path = tmp_path / f"{fp[:16]}.jsonl"
        path.write_text('{"kind": "hea')  # only the torn header survived
        journal = RunJournal.open(tmp_path, fp)
        assert journal.completed == {} and journal.failures == {}
        journal.close()


class TestResume:
    def test_refuses_nonempty_journal_without_resume(self, tmp_path):
        run_curve(PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path))
        with pytest.raises(JournalError, match="--resume"):
            run_curve(PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path))

    def test_resume_of_complete_run_is_bit_identical(self, tmp_path):
        reference = run_curve(PLATFORM, VARIANTS, SETTINGS)
        first = run_curve(PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path))
        resumed = run_curve(
            PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path), resume=True
        )
        assert first == dict(reference)
        assert resumed == dict(reference)

    def test_resume_after_truncation_is_bit_identical(self, tmp_path):
        reference = run_curve(PLATFORM, VARIANTS, SETTINGS)
        run_curve(PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path))
        fp = fingerprint()
        path = tmp_path / f"{fp[:16]}.jsonl"
        lines = path.read_text().splitlines(keepends=True)
        # Simulate a kill that lost half the checkpoints plus a torn line.
        survivors = lines[: 1 + len(lines) // 2]
        path.write_text("".join(survivors) + lines[len(survivors)][:7])
        resumed = run_curve(
            PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path), resume=True
        )
        assert resumed == dict(reference)
        assert resumed.failures == []
        assert resumed.coverage == 1.0

    def test_resume_works_across_different_jobs(self, tmp_path):
        reference = run_curve(PLATFORM, VARIANTS, SETTINGS)
        run_curve(PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path))
        resumed = run_curve(
            PLATFORM,
            VARIANTS,
            replace(SETTINGS, jobs=2),
            journal_dir=str(tmp_path),
            resume=True,
        )
        assert resumed == dict(reference)

    def test_distinct_point_offsets_use_distinct_files(self, tmp_path):
        run_curve(PLATFORM, VARIANTS, SETTINGS, journal_dir=str(tmp_path))
        run_curve(
            PLATFORM,
            VARIANTS,
            SETTINGS,
            point_offset=1000,
            journal_dir=str(tmp_path),
        )
        assert len(list(tmp_path.glob("*.jsonl"))) == 2
