"""Unit tests for trace lowering and the exact trace simulator."""

import pytest

from repro.cacheanalysis.extraction import extract_parameters
from repro.cacheanalysis.simulator import simulate_trace
from repro.cacheanalysis.state import DirectMappedCache
from repro.errors import ProgramError
from repro.model.platform import CacheGeometry
from repro.program.cfg import Alt, Block, Loop, Program, Seq
from repro.program.malardalen import ALL_MODELS
from repro.program.trace import TraceStep, worst_case_trace

GEO = CacheGeometry(num_sets=16, block_size=32)


def line_block(line, n_lines=1, uncached=0, work=None):
    kwargs = {}
    if work is not None:
        kwargs["work"] = work
    return Block(start=line * 32, n_instructions=8 * n_lines, uncached=uncached, **kwargs)


class TestTraceStep:
    def test_rejects_negative_work(self):
        with pytest.raises(ProgramError):
            TraceStep(work=-1)

    def test_uncached_excludes_block(self):
        with pytest.raises(ProgramError):
            TraceStep(work=0, block=3, uncached=True)


class TestLowering:
    def test_one_step_per_memory_block(self):
        program = Program(name="p", root=line_block(0, n_lines=3))
        steps = worst_case_trace(program, GEO)
        assert [s.block for s in steps] == [0, 1, 2]

    def test_work_distributed_across_steps(self):
        program = Program(name="p", root=line_block(0, n_lines=3, work=10))
        steps = worst_case_trace(program, GEO)
        assert sum(s.work for s in steps) == 10

    def test_uncached_steps_emitted(self):
        program = Program(name="p", root=line_block(0, uncached=2))
        steps = worst_case_trace(program, GEO)
        assert sum(1 for s in steps if s.uncached) == 2
        assert sum(1 for s in steps if s.block is not None) == 1

    def test_loops_unrolled(self):
        program = Program(name="p", root=Loop(line_block(0), bound=5))
        steps = worst_case_trace(program, GEO)
        assert len(steps) == 5

    def test_step_cap_enforced(self):
        program = Program(name="p", root=Loop(line_block(0), bound=1000))
        with pytest.raises(ProgramError):
            worst_case_trace(program, GEO, max_steps=100)

    def test_alt_takes_heavier_branch(self):
        heavy = line_block(0, n_lines=4)
        light = line_block(8, n_lines=1)
        program = Program(name="p", root=Alt(heavy, light))
        steps = worst_case_trace(program, GEO)
        assert [s.block for s in steps] == [0, 1, 2, 3]

    def test_alt_choice_is_state_dependent(self):
        # Once the heavy branch's blocks are cached, the other branch has
        # the larger demand and is chosen on the second encounter.
        branch_a = line_block(0, n_lines=2)
        branch_b = line_block(8, n_lines=2)
        program = Program(
            name="p", root=Loop(Alt(branch_a, branch_b), bound=2)
        )
        steps = worst_case_trace(program, GEO)
        assert [s.block for s in steps] == [0, 1, 8, 9]


class TestTraceAgainstExtraction:
    @pytest.mark.parametrize("program", ALL_MODELS, ids=lambda p: p.name)
    def test_trace_demand_never_exceeds_md(self, program):
        """The lowered trace, replayed cold, demands at most the analysed MD."""
        geometry = CacheGeometry(num_sets=256, block_size=32)
        scaled = program.scaled(0.05)
        params = extract_parameters(scaled, geometry)
        steps = worst_case_trace(scaled, geometry)
        cached = [s.block for s in steps if s.block is not None]
        uncached = sum(1 for s in steps if s.uncached)
        result = simulate_trace(cached, geometry)
        assert result.misses + uncached <= params.md

    @pytest.mark.parametrize("program", ALL_MODELS, ids=lambda p: p.name)
    def test_trace_work_never_exceeds_pd(self, program):
        geometry = CacheGeometry(num_sets=256, block_size=32)
        scaled = program.scaled(0.05)
        params = extract_parameters(scaled, geometry)
        steps = worst_case_trace(scaled, geometry)
        assert sum(s.work for s in steps) <= params.pd


class TestSimulateTrace:
    def test_counts_hits_and_misses(self):
        result = simulate_trace([1, 1, 2, 1], GEO)
        assert result.misses == 2
        assert result.hits == 2
        assert result.accesses == 4

    def test_hit_sets_recorded(self):
        result = simulate_trace([1, 1, 5], GEO)
        assert result.hit_sets == frozenset({1})

    def test_initial_state_respected(self):
        warm = DirectMappedCache.with_resident_blocks(GEO, [3])
        result = simulate_trace([3], GEO, initial=warm)
        assert result.misses == 0

    def test_initial_state_not_mutated(self):
        warm = DirectMappedCache.with_resident_blocks(GEO, [3])
        simulate_trace([19], GEO, initial=warm)  # 19 conflicts with 3
        assert warm.lookup(3)

    def test_final_state_returned(self):
        result = simulate_trace([1, 2], GEO)
        assert result.final_state.lookup(1)
        assert result.final_state.lookup(2)

    def test_empty_trace(self):
        result = simulate_trace([], GEO)
        assert result.accesses == 0
