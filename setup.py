"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file only exists so
that fully-offline environments (no ``wheel`` package available) can still
perform an editable install via ``python setup.py develop``.
"""

from setuptools import setup

setup()
