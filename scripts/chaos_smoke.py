#!/usr/bin/env python3
"""Chaos harness for the crash-safe cache, coalescing and shard router.

Proves, against *real* processes with injected faults, the claims
``docs/CACHE.md`` makes (runnable locally and as the ``chaos-smoke`` CI
job):

1. **Differential cache oracle** — a cache hit is byte-identical to the
   cold compute, and entries survive a daemon restart (durability).
2. **Kill mid-write** — ``REPRO_CHAOS_FAULT=kill-mid-write`` makes the
   daemon die (exit 137) between writing the tmp file and committing an
   entry: committed state is untouched, the torn dropping is swept on
   restart, and the victim request recomputes bit-identically.
3. **Corruption quarantine** — truncated, bit-flipped and empty entry
   files are quarantined (moved aside, never deleted) on restart; the
   affected requests recompute, everything else still hits.
4. **Coalescing** — N identical concurrent requests run exactly one
   analysis; a budget-aborted request never poisons the cache and an
   identical uncapped rerun computes, completes and caches.
5. **Shard router failover** — with one shard SIGSTOPped (slow) or
   SIGKILLed (dead), idempotent requests fail over to the surviving
   shard with capped backoff; the router stays ready until *every*
   shard is gone, then degrades to a typed 503.
6. **Overload storm** — a real daemon driven at 4x its admission cap
   with mixed priority classes: every response is typed (no 5xx without
   a ``shed``/``degraded`` marker), batch requests are shed first with a
   jittered ``Retry-After``, admitted interactive requests answer within
   their propagated deadline (many via the brownout coarse tier), and
   ``/stats`` counts every shed and degraded outcome.
7. **Deadline storm** — the HTTP-free service core under an injected
   clock: expired-on-arrival requests are shed before the pool, near-zero
   deadlines clamp to the minimum budget, and no admitted request ever
   carries a budget exceeding its propagated deadline.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import default_platform  # noqa: E402
from repro.generation import generate_taskset  # noqa: E402
from repro.resultcache import (  # noqa: E402
    CHAOS_FAULT_ENV,
    CHAOS_KILL_STATUS,
    request_fingerprint,
)
from repro.serialization import taskset_to_json  # noqa: E402
from repro.service.protocol import parse_request  # noqa: E402

ENV = dict(
    os.environ,
    PYTHONPATH=str(ROOT / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)
ENV.pop(CHAOS_FAULT_ENV, None)


def expect(condition, message):
    if not condition:
        raise SystemExit(f"chaos-smoke: FAILED: {message}")
    print(f"  ok: {message}", flush=True)


def http(method, url, document=None, timeout=120):
    """One JSON request; returns (status, parsed body).

    Transport-level failures (connection refused/reset — e.g. the peer
    was deliberately killed mid-request) return ``(None, None)`` so
    scenarios can assert on them.
    """
    data = json.dumps(document).encode("utf-8") if document is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())
    except (urllib.error.URLError, ConnectionError, OSError):
        return None, None


def start_process(args, env=None, marker="listening on"):
    """Launch a repro server process; returns (process, scraped base URL)."""
    print(f"$ {' '.join(args)}", flush=True)
    process = subprocess.Popen(
        args, cwd=ROOT, env=env or ENV, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if marker in line:
            return process, line.strip().rsplit(" ", 1)[-1]
        if process.poll() is not None:
            break
        time.sleep(0.05)
    out, err = process.communicate(timeout=10)
    raise SystemExit(f"chaos-smoke: process never came up:\n{out}\n{err}")


def start_daemon(cache_dir, extra=(), env=None):
    args = [
        sys.executable, "-m", "repro.service",
        "--port", "0", "--workers", "2", "--max-in-flight", "8",
        "--cache-dir", str(cache_dir), *extra,
    ]
    return start_process(args, env=env)


def stop(process, expect_code=None, sig=signal.SIGTERM):
    if process.poll() is None:
        process.send_signal(sig)
    try:
        process.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        process.kill()
        process.communicate(timeout=10)
    if expect_code is not None:
        expect(
            process.returncode == expect_code,
            f"process exited {expect_code} (got {process.returncode})",
        )


def envelope_for(seed, utilization=0.3):
    platform = default_platform()
    taskset = generate_taskset(random.Random(seed), platform, utilization)
    return json.loads(taskset_to_json(taskset, platform))


def fingerprint_of(envelope):
    """Client-side fingerprint, computed exactly as the daemon computes it."""
    request = parse_request({"id": "fp", "taskset": envelope})
    return request_fingerprint(request.taskset, request.platform, request.config)


def entry_path(cache_dir, fingerprint):
    return pathlib.Path(cache_dir) / "entries" / fingerprint[:2] / f"{fingerprint}.json"


def comparable(body):
    """Response body minus routing/caching markers and the caller id."""
    return {k: v for k, v in body.items() if k not in ("id", "cache", "shard")}


# -- scenario 1: differential cache oracle ------------------------------------


def cache_oracle_scenario(cache_dir):
    print("[1] differential cache oracle", flush=True)
    envelope = envelope_for(seed=11)
    process, url = start_daemon(cache_dir)
    try:
        status, cold = http("POST", f"{url}/analyze", {"id": "cold", "taskset": envelope})
        expect(status == 200 and cold["status"] == "ok", "cold compute completes")
        expect("cache" not in cold, "cold compute is not marked as a hit")
        status, warm = http("POST", f"{url}/analyze", {"id": "warm", "taskset": envelope})
        expect(status == 200 and warm.get("cache") == "hit", "second request hits the cache")
        expect(
            comparable(cold) == comparable(warm),
            "cache hit is bit-identical to the cold compute",
        )
        _status, stats = http("GET", f"{url}/stats")
        expect(stats["perf"]["result_cache_hits"] >= 1, "/stats counts the hit")
        expect(stats["cache"]["entries"] >= 1, "/stats exposes the entry count")
    finally:
        stop(process, expect_code=0)
    # Durability: a fresh process on the same directory still hits.
    process, url = start_daemon(cache_dir)
    try:
        status, after = http(
            "POST", f"{url}/analyze", {"id": "after-restart", "taskset": envelope}
        )
        expect(
            status == 200 and after.get("cache") == "hit",
            "entry survives a daemon restart",
        )
        expect(
            comparable(cold) == comparable(after),
            "post-restart hit is bit-identical to the original compute",
        )
    finally:
        stop(process, expect_code=0)
    return envelope, cold


# -- scenario 2: kill mid-write -----------------------------------------------


def kill_mid_write_scenario(cache_dir, committed_envelope, committed_body):
    print("[2] kill mid-write", flush=True)
    victim = envelope_for(seed=22)
    victim_fp = fingerprint_of(victim)
    chaos_env = dict(ENV)
    chaos_env[CHAOS_FAULT_ENV] = "kill-mid-write"
    process, url = start_daemon(cache_dir, env=chaos_env)
    status, body = http("POST", f"{url}/analyze", {"id": "victim", "taskset": victim})
    expect(
        status is None or status >= 500,
        f"request died with the daemon (status={status})",
    )
    process.wait(timeout=60)
    expect(
        process.returncode == CHAOS_KILL_STATUS,
        f"daemon was killed mid-write (exit {process.returncode})",
    )
    droppings = list(pathlib.Path(cache_dir).rglob("*.tmp"))
    expect(droppings, f"torn tmp dropping left behind ({len(droppings)} file(s))")
    expect(
        not entry_path(cache_dir, victim_fp).exists(),
        "no partial entry was committed at the final path",
    )
    committed_fp = fingerprint_of(committed_envelope)
    expect(
        entry_path(cache_dir, committed_fp).exists(),
        "previously committed entry is untouched",
    )
    # Recovery: a clean daemon sweeps the dropping and recomputes.
    process, url = start_daemon(cache_dir)
    try:
        expect(
            not list(pathlib.Path(cache_dir).rglob("*.tmp")),
            "startup scan swept the torn dropping",
        )
        status, replay = http(
            "POST", f"{url}/analyze", {"id": "committed", "taskset": committed_envelope}
        )
        expect(
            status == 200 and replay.get("cache") == "hit"
            and comparable(replay) == comparable(committed_body),
            "committed entry still hits, bit-identical",
        )
        status, recomputed = http(
            "POST", f"{url}/analyze", {"id": "victim-retry", "taskset": victim}
        )
        expect(
            status == 200 and recomputed["status"] == "ok" and "cache" not in recomputed,
            "victim request recomputes cleanly",
        )
        expect(
            entry_path(cache_dir, victim_fp).exists(),
            "recomputed result is committed durably",
        )
        _status, stats = http("GET", f"{url}/stats")
        expect(
            stats["cache"]["quarantined_files"] == 0,
            "a swept dropping is not corruption (nothing quarantined)",
        )
        return recomputed
    finally:
        stop(process, expect_code=0)


# -- scenario 3: corruption quarantine ----------------------------------------


def corruption_scenario(cache_dir, probes):
    """``probes``: list of (envelope, known-good body) pairs to corrupt."""
    print("[3] corruption quarantine", flush=True)
    (env_a, body_a), (env_b, body_b) = probes
    path_a = entry_path(cache_dir, fingerprint_of(env_a))
    path_b = entry_path(cache_dir, fingerprint_of(env_b))
    # Truncate one entry, flip a payload bit in another, drop an empty file.
    text = path_a.read_text()
    path_a.write_text(text[: len(text) // 2])
    raw = bytearray(path_b.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    path_b.write_bytes(bytes(raw))
    empty = path_a.with_name("0" * 64 + ".json")
    empty.write_text("")
    process, url = start_daemon(cache_dir)
    try:
        _status, stats = http("GET", f"{url}/stats")
        expect(
            stats["cache"]["quarantined_files"] >= 3,
            f"startup scan quarantined the corrupt files "
            f"({stats['cache']['quarantined_files']})",
        )
        quarantined = list((pathlib.Path(cache_dir) / "quarantine").iterdir())
        expect(
            len(quarantined) >= 3,
            f"corrupt files moved aside, never deleted ({len(quarantined)})",
        )
        for name, envelope, original in (("truncated", env_a, body_a), ("bit-flipped", env_b, body_b)):
            status, body = http(
                "POST", f"{url}/analyze", {"id": f"re-{name}", "taskset": envelope}
            )
            expect(
                status == 200 and body["status"] == "ok" and "cache" not in body,
                f"{name} entry misses and recomputes",
            )
            expect(
                comparable(body) == comparable(original),
                f"recompute after {name} corruption is bit-identical",
            )
    finally:
        stop(process, expect_code=0)


# -- scenario 4: coalescing and abort non-poisoning ---------------------------


def coalesce_scenario(cache_dir):
    print("[4] request coalescing", flush=True)
    envelope = envelope_for(seed=44, utilization=0.4)
    process, url = start_daemon(cache_dir)
    try:
        _status, before = http("GET", f"{url}/stats")
        results = [None] * 6
        def submit(index):
            results[index] = http(
                "POST", f"{url}/analyze", {"id": f"co-{index}", "taskset": envelope}
            )
        threads = [threading.Thread(target=submit, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        bodies = [body for _status, body in results]
        expect(
            all(s == 200 and b["status"] == "ok" for s, b in results),
            "all 6 identical concurrent requests completed",
        )
        expect(
            len({json.dumps(comparable(b), sort_keys=True) for b in bodies}) == 1,
            "all 6 responses are bit-identical",
        )
        _status, after = http("GET", f"{url}/stats")
        ran = after["perf"]["analyses"] - before["perf"]["analyses"]
        shared = (
            after["perf"]["coalesced_requests"] - before["perf"]["coalesced_requests"]
        ) + (
            after["perf"]["result_cache_hits"] - before["perf"]["result_cache_hits"]
        )
        expect(ran == 1, f"exactly one analysis ran for 6 requests (ran {ran})")
        expect(shared == 5, f"the other 5 were coalesced or cache hits ({shared})")

        # Budget aborts must never poison the cache: a capped request
        # aborts, an identical uncapped request *computes* (no hit) and
        # only then does the fingerprint become durable.
        heavy = envelope_for(seed=45, utilization=0.9)
        status, aborted = http(
            "POST",
            f"{url}/analyze",
            {"id": "capped", "taskset": heavy, "max_iterations": 2},
        )
        expect(
            status == 200 and aborted["status"] == "budget-exceeded",
            "capped request aborts on its iteration budget",
        )
        expect(
            not entry_path(cache_dir, fingerprint_of(heavy)).exists(),
            "aborted partial was not written to the cache",
        )
        status, full = http(
            "POST", f"{url}/analyze", {"id": "uncapped", "taskset": heavy}
        )
        expect(
            status == 200 and full["status"] == "ok" and "cache" not in full,
            "identical uncapped request recomputes from scratch",
        )
        status, again = http(
            "POST", f"{url}/analyze", {"id": "uncapped-2", "taskset": heavy}
        )
        expect(
            status == 200 and again.get("cache") == "hit"
            and comparable(again) == comparable(full),
            "completed result is cached and hits bit-identically",
        )
    finally:
        stop(process, expect_code=0)


# -- scenario 5: shard router failover ----------------------------------------


def router_scenario(workdir):
    print("[5] shard router failover", flush=True)
    shard_a, url_a = start_daemon(workdir / "shard-a")
    shard_b, url_b = start_daemon(workdir / "shard-b")
    router, url = start_process(
        [
            sys.executable, "-m", "repro.service.router",
            "--port", "0", "--shard", url_a, "--shard", url_b,
            "--health-interval", "0.2", "--forward-timeout", "5",
            "--backoff-base", "0.05", "--backoff-cap", "0.5",
        ]
    )
    shards = [shard_a, shard_b]
    try:
        # Find one envelope per primary shard (deterministic client-side
        # fingerprints — the same hash the router computes server-side).
        by_shard = {}
        for seed in range(100, 200):
            envelope = envelope_for(seed=seed)
            primary = int(fingerprint_of(envelope)[:16], 16) % 2
            if primary not in by_shard:
                by_shard[primary] = envelope
            if len(by_shard) == 2:
                break
        expect(len(by_shard) == 2, "found envelopes routing to both shards")
        for shard, envelope in sorted(by_shard.items()):
            status, body = http(
                "POST", f"{url}/analyze", {"id": f"route-{shard}", "taskset": envelope}
            )
            expect(
                status == 200 and body["status"] == "ok" and body["shard"] == shard,
                f"request lands on its primary shard {shard}",
            )
        status, body = http("GET", f"{url}/readyz")
        expect(status == 200, "router ready with both shards up")

        # Slow shard: SIGSTOP shard 0; its requests time out and fail over.
        os.kill(shard_a.pid, signal.SIGSTOP)
        try:
            status, body = http(
                "POST", f"{url}/analyze", {"id": "slow", "taskset": by_shard[0]}
            )
            expect(
                status == 200 and body["status"] == "ok" and body["shard"] == 1,
                "request to the SIGSTOPped shard fails over (timeout path)",
            )
        finally:
            os.kill(shard_a.pid, signal.SIGCONT)

        # Dead shard: SIGKILL shard 1; its requests fail over to shard 0.
        shard_b.kill()
        shard_b.wait(timeout=30)
        status, body = http(
            "POST", f"{url}/analyze", {"id": "dead", "taskset": by_shard[1]}
        )
        expect(
            status == 200 and body["status"] == "ok" and body["shard"] == 0,
            "request to the SIGKILLed shard fails over (dead path)",
        )
        status, body = http("GET", f"{url}/readyz")
        expect(status == 200, "router stays ready with one shard down")
        _status, stats = http("GET", f"{url}/stats")
        expect(
            stats["router"]["failovers"] >= 2 and stats["router"]["retries"] >= 2,
            f"router counted its retries and failovers ({stats['router']})",
        )

        # Total loss: kill the last shard; the router degrades typed.
        shard_a.kill()
        shard_a.wait(timeout=30)
        status, body = http(
            "POST", f"{url}/analyze", {"id": "nobody", "taskset": by_shard[0]}
        )
        expect(
            status == 503 and body["status"] == "no-shards",
            "router returns a typed 503 with every shard down",
        )
        deadline = time.monotonic() + 10
        ready = 200
        while time.monotonic() < deadline and ready == 200:
            ready, _body = http("GET", f"{url}/readyz")
            time.sleep(0.2)
        expect(ready == 503, "router /readyz flips to 503 once the poller notices")
    finally:
        for process in (*shards, router):
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)


# -- scenario 6: overload storm ------------------------------------------------


def overload_storm_scenario(workdir):
    """Drive a real daemon at 4x its admission cap with mixed priorities.

    Two ``inject: hang`` blockers pin the (single) pool worker and hold the
    admission queue near its cap, then eight concurrent requests — four
    interactive with a propagated deadline, four batch — storm the daemon.
    Every outcome must be typed: batch work sheds first with a jittered
    ``Retry-After``, admitted interactive work answers inside its deadline
    (via the brownout coarse tier while the pool is pinned), and nothing
    surfaces as an unmarked 5xx.
    """
    print("[6] overload storm", flush=True)
    daemon, url = start_process([
        sys.executable, "-m", "repro.service",
        "--port", "0", "--workers", "1", "--max-in-flight", "4",
        "--brownout-in-flight", "2", "--batch-max-in-flight", "2",
        "--cache-dir", str(workdir / "overload-cache"),
    ])
    blockers = []
    try:
        # Pin the admission queue: cooperative hangs that self-abort via
        # their own budget, so the drain at the end stays clean.
        def block(index):
            http(
                "POST", f"{url}/analyze",
                {
                    "id": f"blocker-{index}",
                    "taskset": envelope_for(seed=70 + index),
                    "inject": "hang",
                    "budget_seconds": 6,
                },
            )

        blockers = [
            threading.Thread(target=block, args=(index,)) for index in range(2)
        ]
        for thread in blockers:
            thread.start()
        deadline = time.monotonic() + 15
        in_flight = 0
        while time.monotonic() < deadline and in_flight < 2:
            _status, stats = http("GET", f"{url}/stats")
            in_flight = (stats or {}).get("in_flight", 0)
            time.sleep(0.05)
        expect(in_flight >= 2, "blockers occupy the admission queue")

        results = {}

        def fire(name, priority, seed):
            begun = time.monotonic()
            status, body = http(
                "POST", f"{url}/analyze",
                {
                    "id": name,
                    "taskset": envelope_for(seed=seed),
                    "deadline_ms": 10_000,
                    "priority": priority,
                },
            )
            results[name] = (status, body, time.monotonic() - begun)

        storm = [
            threading.Thread(
                target=fire, args=(f"interactive-{index}", "interactive", 80 + index)
            )
            for index in range(4)
        ] + [
            threading.Thread(
                target=fire, args=(f"batch-{index}", "batch", 90 + index)
            )
            for index in range(4)
        ]
        for thread in storm:
            thread.start()
        for thread in storm:
            thread.join(timeout=60)

        expect(
            len(results) == 8 and all(
                status is not None for status, _body, _elapsed in results.values()
            ),
            "every storm request got an HTTP response",
        )
        brownouts = sheds = 0
        for name, (status, body, elapsed) in sorted(results.items()):
            expect(
                status < 500 or body.get("shed") is True,
                f"{name}: no untyped 5xx (got {status} {body.get('status')})",
            )
            if status == 200:
                if body.get("brownout"):
                    brownouts += 1
            elif status == 429:
                expect(
                    body.get("retry_after", 0) > 0,
                    f"{name}: 429 carries a jittered Retry-After",
                )
                if body.get("status") == "overload-shed":
                    expect(
                        body.get("shed") is True,
                        f"{name}: overload shed is a typed marker",
                    )
                    sheds += 1
            else:
                raise SystemExit(
                    f"chaos-smoke: FAILED: {name}: unexpected outcome "
                    f"{status} {body}"
                )
            if name.startswith("interactive") and status == 200:
                expect(
                    elapsed < 10.0,
                    f"{name}: admitted request answered inside its "
                    f"10s deadline ({elapsed:.3f}s)",
                )
        expect(
            brownouts >= 1,
            f"overloaded daemon served degraded brownout answers "
            f"({brownouts} of 8)",
        )
        expect(
            sheds >= 1,
            f"batch-priority requests were shed first ({sheds} of 4)",
        )
        for name, (status, body, _elapsed) in sorted(results.items()):
            if body and body.get("brownout"):
                degraded = body.get("degraded") or {}
                expect(
                    degraded.get("tier") == "coarse"
                    and degraded.get("soundness") in ("degraded-sound", "unknown"),
                    f"{name}: brownout answer carries the typed degradation "
                    f"marker ({degraded})",
                )
                break

        _status, stats = http("GET", f"{url}/stats")
        requests_stats = stats["requests"]
        perf = stats["perf"]
        expect(
            requests_stats["shed_overload"] >= sheds
            and requests_stats["brownout_served"] >= brownouts
            and requests_stats["degraded"] >= brownouts,
            f"/stats counts every shed and degraded outcome "
            f"({requests_stats})",
        )
        expect(
            perf["shed_requests"] >= sheds
            and perf["degraded_responses"] >= brownouts
            and perf["ladder_tier_runs"] >= brownouts,
            f"perf counters track the degradation ladder ({perf})",
        )
        expect(
            stats["overload"]["brownout_threshold"] == 2
            and stats["overload"]["batch_cap"] == 2,
            "/stats exposes the overload-control configuration",
        )
    finally:
        for thread in blockers:
            thread.join(timeout=30)
        stop(daemon, expect_code=0)


# -- scenario 7: deadline storm ------------------------------------------------


def deadline_storm_scenario():
    """The HTTP-free service core under an injected clock.

    Deterministic replay of the deadline admission ladder: expired-on-arrival
    requests are shed with a typed 504 before any pool round-trip, near-zero
    remainders clamp to the minimum budget, and no admitted request carries
    a budget exceeding its propagated deadline.
    """
    print("[7] deadline storm (injected clock)", flush=True)
    from repro.service.daemon import AnalysisService, ServiceConfig
    from repro.service.pool import service_worker

    class Clock:
        def __init__(self):
            self.now = 100.0

        def __call__(self):
            return self.now

    class SpyPool:
        """In-process pool recording every admitted document."""

        def __init__(self):
            self.documents = []

        def run(self, document):
            self.documents.append(document)
            return service_worker(document)

        def allowance_for(self, budget_seconds):
            return None

        def close(self):
            pass

    clock = Clock()
    pool = SpyPool()
    service = AnalysisService(
        ServiceConfig(max_in_flight=8),
        pool=pool,
        clock=clock,
        rng=random.Random(0),
    )
    safety_seconds = service.config.deadline_safety_ms / 1000.0
    floor = service.config.min_budget_seconds
    try:
        envelope = envelope_for(seed=61)
        status, body = service.handle(
            {"id": "expired", "taskset": envelope, "deadline_ms": 20}
        )
        expect(
            status == 504
            and body.get("shed") is True
            and body["status"] == "deadline-expired",
            "expired-on-arrival request is shed with a typed 504",
        )
        expect(not pool.documents, "the shed request never reached the pool")

        status, body = service.handle(
            {"id": "tight", "taskset": envelope, "deadline_ms": 30}
        )
        expect(status == 200, "near-zero deadline request is admitted")
        expect(
            abs(pool.documents[-1]["budget_seconds"] - floor) < 1e-9,
            f"near-zero deadline clamps to the {floor:g}s budget floor",
        )

        shed = served = 0
        for index, deadline_ms in enumerate((5, 10, 24, 26, 40, 100, 1_000, 10_000)):
            clock.now += 0.001
            admitted_before = len(pool.documents)
            status, body = service.handle(
                {
                    "id": f"storm-{index}",
                    "taskset": envelope_for(seed=62 + index),
                    "deadline_ms": deadline_ms,
                }
            )
            if status == 504:
                expect(
                    body.get("shed") is True,
                    f"deadline_ms={deadline_ms}: rejected deadline is a "
                    f"typed shed",
                )
                expect(
                    len(pool.documents) == admitted_before,
                    f"deadline_ms={deadline_ms}: shed without a pool "
                    f"round-trip",
                )
                shed += 1
            else:
                expect(
                    status == 200,
                    f"deadline_ms={deadline_ms}: admitted request completes "
                    f"typed (got {status})",
                )
                document = pool.documents[-1]
                allowed = max(deadline_ms / 1000.0 - safety_seconds, floor)
                expect(
                    document["budget_seconds"] <= allowed + 1e-9,
                    f"deadline_ms={deadline_ms}: budget "
                    f"{document['budget_seconds']:.3f}s never exceeds the "
                    f"propagated deadline",
                )
                expect(
                    document["deadline_ms"] <= deadline_ms,
                    f"deadline_ms={deadline_ms}: forwarded deadline is "
                    f"decremented, never inflated",
                )
                served += 1
        expect(
            shed >= 2 and served >= 4,
            f"the storm exercised both ladder arms ({shed} shed, "
            f"{served} served)",
        )
        stats = service.stats_document()
        expect(
            stats["requests"]["shed_expired"] == shed + 1,
            "every expiry is counted exactly once",
        )
        expect(
            stats["perf"]["deadline_expired_rejects"] == shed + 1
            and stats["perf"]["shed_requests"] >= shed + 1,
            "perf counters match the shed tally",
        )
    finally:
        service.close()


def main():
    workdir = pathlib.Path("/tmp") / f"repro-chaos-{os.getpid()}"
    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)
    cache_dir = workdir / "cache"
    try:
        committed_envelope, committed_body = cache_oracle_scenario(cache_dir)
        victim_body = kill_mid_write_scenario(
            cache_dir, committed_envelope, committed_body
        )
        victim_envelope = envelope_for(seed=22)
        corruption_scenario(
            cache_dir,
            [(committed_envelope, committed_body), (victim_envelope, victim_body)],
        )
        coalesce_scenario(cache_dir)
        router_scenario(workdir)
        overload_storm_scenario(workdir)
        deadline_storm_scenario()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print("chaos-smoke: all scenarios passed", flush=True)


if __name__ == "__main__":
    main()
