"""Benchmark regression gate: run the gated benches once, compare medians.

CI's ``bench-smoke`` job runs this script.  It executes the gated
benchmark modules a single time each — the micro benches
(pytest-benchmark's auto-calibration still takes multiple rounds per
test, so the median is meaningful) plus the end-to-end Fig. 2-scale
sweep of ``benchmarks/test_bench_e2e_sweep.py`` (three fixed rounds of
the whole pipeline) — then compares the median of every gated benchmark
against the baselines committed in ``benchmarks/thresholds.json``:

* a benchmark fails the gate only when its median exceeds ``factor``
  (default 3x) times the committed baseline — CI runners are noisy and a
  sub-3x wobble is indistinguishable from machine variance, so the gate
  only catches genuine regressions (an accidentally disabled cache, a
  quadratic slip, the bitmask kernel falling back to set algebra);
* benchmarks missing from the report fail the gate (a silently skipped
  bench is itself a regression);
* ``--update`` rewrites the baseline medians from a fresh run instead of
  gating, for use after deliberate performance changes.

Exit code 0 = within bounds, 1 = regression, 2 = harness failure.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
THRESHOLDS = REPO_ROOT / "benchmarks" / "thresholds.json"
BENCH_MODULES = (
    "benchmarks/test_bench_micro.py",
    "benchmarks/test_bench_e2e_sweep.py",
    "benchmarks/test_bench_service_cache.py",
)

sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.atomicio import atomic_write_json  # noqa: E402


def run_benchmarks(json_path: Path) -> None:
    """One pass of the gated benchmark modules, writing a JSON report."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *BENCH_MODULES,
        "--benchmark-only",
        f"--benchmark-json={json_path}",
        "-q",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    if completed.returncode != 0:
        raise RuntimeError(
            f"benchmark run failed with exit code {completed.returncode}"
        )


def report_medians(json_path: Path) -> Dict[str, float]:
    document = json.loads(json_path.read_text())
    return {
        bench["name"]: float(bench["stats"]["median"])
        for bench in document.get("benchmarks", ())
    }


def gate(medians: Dict[str, float], thresholds: dict) -> int:
    factor = float(thresholds.get("factor", 3.0))
    failures = []
    for name, baseline in thresholds["medians"].items():
        measured = medians.get(name)
        if measured is None:
            failures.append(f"{name}: benchmark missing from the report")
            continue
        limit = factor * float(baseline)
        ratio = measured / float(baseline)
        verdict = "FAIL" if measured > limit else "ok"
        print(
            f"  {name:<32} median {measured * 1e3:8.3f} ms   "
            f"baseline {float(baseline) * 1e3:8.3f} ms   "
            f"{ratio:5.2f}x (limit {factor:.1f}x)   {verdict}"
        )
        if measured > limit:
            failures.append(
                f"{name}: median {measured:.6f}s exceeds "
                f"{factor:.1f}x baseline {float(baseline):.6f}s"
            )
    if failures:
        print("bench-smoke: FAIL")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("bench-smoke: PASS")
    return 0


def update(medians: Dict[str, float], thresholds: dict) -> int:
    for name in thresholds["medians"]:
        if name not in medians:
            print(f"bench-smoke: {name} missing from the report", file=sys.stderr)
            return 2
        thresholds["medians"][name] = round(medians[name], 6)
    atomic_write_json(THRESHOLDS, thresholds, indent=2)
    print(f"updated {THRESHOLDS}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Run the micro benchmarks once and gate (or --update) "
        "the committed baseline medians."
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite benchmarks/thresholds.json from this run instead of "
        "gating against it",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="gate an existing pytest-benchmark JSON report instead of "
        "running the benchmarks",
    )
    args = parser.parse_args()
    thresholds = json.loads(THRESHOLDS.read_text())
    try:
        if args.report is not None:
            medians = report_medians(args.report)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                json_path = Path(tmp) / "bench.json"
                run_benchmarks(json_path)
                medians = report_medians(json_path)
    except (RuntimeError, OSError, json.JSONDecodeError, KeyError) as error:
        print(f"bench-smoke: harness failure: {error}", file=sys.stderr)
        return 2
    if args.update:
        return update(medians, thresholds)
    return gate(medians, thresholds)


if __name__ == "__main__":
    sys.exit(main())
