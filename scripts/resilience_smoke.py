#!/usr/bin/env python3
"""End-to-end smoke test of the campaign resilience layer.

Drives the real ``repro-experiments`` CLI through the three recovery
scenarios that ``docs/RESILIENCE.md`` promises (runnable locally and as
the ``resilience-smoke`` CI job):

1. **Crash injection** — ``--inject crash-sample`` poisons one sample so
   its worker dies with ``os._exit``; the sweep must still complete,
   quarantine exactly that sample and report the degraded coverage.
2. **Hang injection** — ``--inject hang-sample`` with a small
   ``--timeout`` makes one chunk stall; the watchdog kills the pool, the
   retry succeeds, and the final report must be bit-identical to a clean
   run.
3. **Kill + resume** — a journaled sweep is SIGTERMed mid-flight (exit
   130, journal flushed), resumed with ``--resume``, and the resumed
   report must be bit-identical to an uninterrupted run.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

BASE = [sys.executable, "-m", "repro.experiments"]

ENV = dict(
    os.environ,
    PYTHONPATH=str(ROOT / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)


def run(args, check=True):
    """Run one CLI invocation, echoing the command line."""
    print(f"$ {' '.join(args)}", flush=True)
    result = subprocess.run(
        args, cwd=ROOT, env=ENV, capture_output=True, text=True
    )
    if check and result.returncode != 0:
        sys.stderr.write(result.stdout + result.stderr)
        raise SystemExit(f"command failed with exit {result.returncode}")
    return result


def figure_lines(text):
    """Report lines without the wall-clock timing footers."""
    return [line for line in text.splitlines() if not line.startswith("[")]


def expect(condition, message):
    if not condition:
        raise SystemExit(f"resilience-smoke: FAILED: {message}")
    print(f"  ok: {message}", flush=True)


def crash_scenario(samples):
    clean = run(BASE + ["fig2", "--samples", samples])
    crashed = run(
        BASE
        + [
            "fig2",
            "--samples",
            samples,
            "--jobs",
            "2",
            "--retries",
            "1",
            "--inject",
            "crash-sample",
        ]
    )
    expect(
        "quarantined crash at point 0 sample 0" in crashed.stderr,
        "crash-injected sweep quarantines the poison sample",
    )
    expect(
        "Coverage:" in crashed.stdout and "1 quarantined" in crashed.stdout,
        "crash-injected report shows degraded coverage",
    )
    expect(
        "reproducer seed" in crashed.stdout,
        "quarantine record carries the reproducer seed",
    )
    expect(
        len(figure_lines(crashed.stdout)) >= len(figure_lines(clean.stdout)),
        "crash-injected sweep still renders the full report",
    )
    return clean


def hang_scenario(samples, clean):
    hung = run(
        BASE
        + [
            "fig2",
            "--samples",
            samples,
            "--jobs",
            "2",
            "--timeout",
            "10",
            "--inject",
            "hang-sample",
        ]
    )
    expect(
        figure_lines(hung.stdout) == figure_lines(clean.stdout),
        "hang-injected sweep recovers bit-identically to a clean run",
    )


def kill_resume_scenario(samples):
    with tempfile.TemporaryDirectory(prefix="repro-journal-") as journal:
        uninterrupted = run(BASE + ["fig2", "--samples", samples])
        args = BASE + ["fig2", "--samples", samples, "--journal", journal]
        print(f"$ {' '.join(args)}  # SIGTERM after 2s", flush=True)
        victim = subprocess.Popen(
            args, cwd=ROOT, env=ENV, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        time.sleep(2.0)
        victim.send_signal(signal.SIGTERM)
        _stdout, stderr = victim.communicate(timeout=120)
        # The run may legitimately finish before the signal lands; the
        # resume below is then a pure journal replay — still a valid check.
        if victim.returncode == 130:
            expect(
                "journal flushed" in stderr,
                "interrupted sweep reports the flushed journal",
            )
        else:
            expect(victim.returncode == 0, "victim run neither finished nor 130")
        journal_files = list(pathlib.Path(journal).glob("*.jsonl"))
        expect(bool(journal_files), "journal file exists after the kill")
        resumed = run(
            BASE
            + [
                "fig2",
                "--samples",
                samples,
                "--journal",
                journal,
                "--resume",
            ]
        )
        expect(
            figure_lines(resumed.stdout) == figure_lines(uninterrupted.stdout),
            "resumed sweep is bit-identical to an uninterrupted run",
        )


def main():
    samples = sys.argv[1] if len(sys.argv) > 1 else "6"
    clean = crash_scenario(samples)
    hang_scenario(samples, clean)
    kill_resume_scenario("30")
    print("resilience-smoke: all scenarios passed", flush=True)


if __name__ == "__main__":
    main()
