"""Strip raw per-round timing arrays from a pytest-benchmark JSON report.

pytest-benchmark's ``--benchmark-json`` output stores every individual
round measurement in ``benchmarks[].stats.data``.  For a checked-in
artifact like ``BENCH_micro.json`` those arrays are pure noise: they
dominate the file size, churn on every regeneration, and everything the
repository consumes (the ``bench-smoke`` regression gate, the numbers
quoted in docs) reads only the summary statistics, which pytest-benchmark
computes before serialising.  This script drops the arrays in place::

    python scripts/strip_bench_data.py BENCH_micro.json

Typical regeneration flow::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_micro.py \\
        --benchmark-only --benchmark-json=BENCH_micro.json
    python scripts/strip_bench_data.py BENCH_micro.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.atomicio import atomic_write_json  # noqa: E402


def strip_report(document: dict) -> int:
    """Remove ``stats.data`` from every benchmark entry, in place.

    Returns the number of measurements dropped.  Summary statistics
    (median, mean, stddev, rounds, ...) are left untouched.
    """
    dropped = 0
    for bench in document.get("benchmarks", ()):
        stats = bench.get("stats")
        if isinstance(stats, dict) and "data" in stats:
            dropped += len(stats["data"])
            del stats["data"]
    return dropped


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Drop raw per-round data arrays from pytest-benchmark "
        "JSON reports, keeping only the summary statistics."
    )
    parser.add_argument(
        "reports", nargs="+", type=Path, help="report file(s) to strip in place"
    )
    args = parser.parse_args(argv)
    for path in args.reports:
        document = json.loads(path.read_text())
        dropped = strip_report(document)
        atomic_write_json(path, document, indent=2, sort_keys=True)
        print(f"{path}: dropped {dropped} raw measurements")
    return 0


if __name__ == "__main__":
    sys.exit(main())
