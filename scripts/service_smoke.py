#!/usr/bin/env python3
"""End-to-end smoke test of the batch-analysis service daemon.

Drives a real ``python -m repro.service`` process over HTTP through the
guarantees ``docs/SERVICE.md`` promises (runnable locally and as the
``service-smoke`` CI job):

1. **Budget cancellation** — a batch containing one hang-poisoned request
   (cooperative spin) with a small deadline budget: the poisoned request
   must come back ``budget-exceeded`` and be quarantined while the healthy
   concurrent requests complete normally.
2. **Result cache** — an identical repeat request is served from the
   persistent content-addressed cache bit-identically, and ``/stats``
   reports the cache/coalescing counters.
3. **Circuit breaker** — repeated ``inject: crash`` requests kill their
   workers until the breaker trips (503 + ``/readyz`` not ready); after
   the cool-down a healthy probe closes it again.
4. **Graceful drain** — SIGTERM: ``/readyz`` flips to 503, in-flight work
   finishes, and the daemon exits 0.

The deeper fault-injection proofs (kill mid-write, corruption
quarantine, shard failover) live in ``scripts/chaos_smoke.py``.

Exits non-zero with a diagnostic on the first violated expectation.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import default_platform  # noqa: E402
from repro.generation import generate_taskset  # noqa: E402
from repro.serialization import taskset_to_json  # noqa: E402

ENV = dict(
    os.environ,
    PYTHONPATH=str(ROOT / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
)


def expect(condition, message):
    if not condition:
        raise SystemExit(f"service-smoke: FAILED: {message}")
    print(f"  ok: {message}", flush=True)


def http(method, url, document=None, timeout=60):
    """One JSON request; returns (status, parsed body)."""
    data = json.dumps(document).encode("utf-8") if document is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def start_daemon(cache_dir=None):
    """Launch the daemon on an OS-picked port; returns (process, base URL)."""
    args = [
        sys.executable,
        "-m",
        "repro.service",
        "--port",
        "0",
        "--workers",
        "2",
        "--max-in-flight",
        "8",
        "--breaker-threshold",
        "2",
        "--breaker-reset",
        "2",
        "--drain-grace",
        "60",
    ]
    if cache_dir is not None:
        args += ["--cache-dir", str(cache_dir)]
    print(f"$ {' '.join(args)}", flush=True)
    process = subprocess.Popen(
        args, cwd=ROOT, env=ENV, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if "listening on" in line:
            url = line.strip().rsplit(" ", 1)[-1]
            return process, url
        if process.poll() is not None:
            break
        time.sleep(0.05)
    out, err = process.communicate(timeout=10)
    raise SystemExit(f"service-smoke: daemon never came up:\n{out}\n{err}")


def taskset_envelope(seed=1, utilization=0.3):
    platform = default_platform()
    taskset = generate_taskset(random.Random(seed), platform, utilization)
    return json.loads(taskset_to_json(taskset, platform))


def budget_scenario(url, envelope):
    """One poisoned request in a concurrent batch; the rest must succeed."""
    results = {}

    def submit(name, document):
        results[name] = http("POST", f"{url}/analyze", document)

    threads = [
        threading.Thread(
            target=submit,
            args=(
                "poisoned",
                {
                    "id": "poisoned",
                    "taskset": envelope,
                    "budget_seconds": 1.0,
                    "inject": "hang",
                },
            ),
        )
    ]
    for index in range(3):
        # Distinct task sets: identical concurrent requests would be
        # coalesced onto one analysis (see cache_scenario), and this
        # scenario wants three real computations racing the poisoned one.
        threads.append(
            threading.Thread(
                target=submit,
                args=(
                    f"healthy-{index}",
                    {
                        "id": f"healthy-{index}",
                        "taskset": taskset_envelope(seed=2 + index),
                    },
                ),
            )
        )
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.monotonic() - started

    status, body = results["poisoned"]
    expect(
        status == 200 and body["status"] == "budget-exceeded",
        "poisoned request is cancelled by its deadline budget "
        f"(status={body.get('status')})",
    )
    expect(
        elapsed < 60,
        f"budget abort happened well before any watchdog ({elapsed:.1f}s)",
    )
    for index in range(3):
        status, body = results[f"healthy-{index}"]
        expect(
            status == 200 and body["status"] == "ok",
            f"concurrent healthy request {index} completed normally",
        )
    _status, stats = http("GET", f"{url}/stats")
    expect(
        {"id": "poisoned", "reason": "budget-exceeded"} in stats["quarantined"],
        "poisoned request is quarantined in /stats",
    )
    expect(
        stats["requests"]["completed"] >= 3,
        "stats count the healthy completions",
    )
    expect(
        stats["perf"]["analyses"] >= 3,
        "perf counters aggregate across worker processes",
    )


def breaker_scenario(url, envelope):
    """Crash workers until the breaker trips, then watch it recover."""
    saw_crash = saw_open = False
    for attempt in range(6):
        status, body = http(
            "POST",
            f"{url}/analyze",
            {"id": f"crash-{attempt}", "taskset": envelope, "inject": "crash"},
        )
        if status == 500 and body.get("error") == "WorkerCrashError":
            saw_crash = True
        if status == 503 and body.get("status") == "breaker-open":
            saw_open = True
            break
    expect(saw_crash, "injected crashes surface as WorkerCrashError")
    expect(saw_open, "repeated worker crashes trip the circuit breaker")
    status, body = http("GET", f"{url}/readyz")
    expect(
        status == 503 and body["status"] == "breaker-open",
        "/readyz reports not-ready while the breaker is open",
    )
    time.sleep(2.5)  # cool-down (matches --breaker-reset 2)
    # A *fresh* task set: a cached fingerprint would be served without
    # touching the pool, and the half-open breaker only closes on a real
    # computation's success.
    status, body = http(
        "POST", f"{url}/analyze", {"id": "probe", "taskset": taskset_envelope(seed=7)}
    )
    expect(
        status == 200 and body["status"] == "ok",
        "half-open probe succeeds and closes the breaker",
    )
    status, body = http("GET", f"{url}/readyz")
    expect(status == 200, "/readyz is ready again after recovery")
    _status, stats = http("GET", f"{url}/stats")
    expect(stats["breaker"]["trips"] >= 1, "stats record the breaker trip")


def cache_scenario(url, envelope):
    """Repeat request hits the durable cache; /stats reports the counters."""
    status, cold = http(
        "POST", f"{url}/analyze", {"id": "cache-cold", "taskset": envelope}
    )
    expect(
        status == 200 and cold["status"] == "ok",
        "cacheable request completes",
    )
    status, warm = http(
        "POST", f"{url}/analyze", {"id": "cache-warm", "taskset": envelope}
    )
    expect(
        status == 200 and warm.get("cache") == "hit",
        "identical repeat request is served from the result cache",
    )
    stripped = lambda body: {  # noqa: E731 — tiny local comparator
        k: v for k, v in body.items() if k not in ("id", "cache")
    }
    expect(
        stripped(cold) == stripped(warm),
        "cache hit is bit-identical to the computed response",
    )
    _status, stats = http("GET", f"{url}/stats")
    expect(
        stats["perf"]["result_cache_hits"] >= 1,
        "perf counters record the cache hit",
    )
    expect(
        stats["perf"]["result_cache_stores"] >= 1,
        "perf counters record the cache store",
    )
    expect(
        "coalesced_requests" in stats["perf"],
        "perf counters expose the coalescing counter",
    )
    cache = stats["cache"]
    expect(
        cache["enabled"] and cache["coalesce"],
        "/stats reports the cache as enabled with coalescing on",
    )
    expect(
        cache["entries"] >= 1 and cache["bytes"] > 0,
        f"/stats exposes entry and byte totals ({cache['entries']} entries)",
    )
    expect(
        cache.get("seeds", {}).get("entries", 0) >= 0,
        "/stats exposes the warm-seed store",
    )


def drain_scenario(process, url, envelope):
    """SIGTERM with a request in flight: clean drain, exit 0."""
    result = {}

    def submit():
        # Fresh task set so the request really occupies the pool (a cache
        # hit would finish before the SIGTERM lands).
        result["inflight"] = http(
            "POST",
            f"{url}/analyze",
            {"id": "inflight", "taskset": taskset_envelope(seed=8)},
        )

    thread = threading.Thread(target=submit)
    thread.start()
    time.sleep(0.3)  # let the request reach the pool
    print("  sending SIGTERM", flush=True)
    process.send_signal(signal.SIGTERM)
    thread.join(timeout=120)
    status, body = result.get("inflight", (None, {}))
    expect(
        status == 200 and body.get("status") == "ok",
        "in-flight request finished during the drain",
    )
    out, err = process.communicate(timeout=120)
    expect(
        process.returncode == 0,
        f"daemon exited 0 after the drain (got {process.returncode})",
    )
    expect("draining" in err, "daemon logged the drain")
    expect("drained, exiting" in out, "daemon reported a clean drain")


def main():
    envelope = taskset_envelope()
    cache_dir = tempfile.mkdtemp(prefix="repro-service-smoke-cache-")
    process, url = start_daemon(cache_dir=cache_dir)
    try:
        status, body = http("GET", f"{url}/healthz")
        expect(status == 200 and body["status"] == "ok", "daemon is live")
        budget_scenario(url, envelope)
        cache_scenario(url, envelope)
        breaker_scenario(url, envelope)
        drain_scenario(process, url, envelope)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate(timeout=10)
        shutil.rmtree(cache_dir, ignore_errors=True)
    print("service-smoke: all scenarios passed", flush=True)


if __name__ == "__main__":
    main()
