#!/usr/bin/env python3
"""Fold the raw sweep outputs under ``results/`` into ``EXPERIMENTS.md``.

Replaces the ``FIG3B_TABLE`` / ``FIG3C_TABLE`` / ``FIG3D_TABLE``
placeholders with the measured series.  Idempotent: running it again after
the placeholders are gone leaves the document untouched.
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(ROOT / "src"))

from repro.atomicio import atomic_write_text  # noqa: E402

PLACEHOLDERS = {
    "FIG3B_TABLE": "fig3b.txt",
    "FIG3C_TABLE": "fig3c.txt",
    "FIG3D_TABLE": "fig3d.txt",
}


def extract_table(raw: str) -> str:
    """Pull the aligned data table out of one driver's stdout."""
    lines = [line for line in raw.splitlines() if line and "WARNING" not in line]
    # Drop the title, underline and timing lines; keep header + rows.
    body = []
    for line in lines:
        if line.startswith("=") or line.startswith("[") or " — " in line:
            continue
        if set(line) <= {"-"}:
            continue
        body.append(line.rstrip())
    return "\n".join(body)


def main() -> int:
    experiments = ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    changed = False
    for placeholder, filename in PLACEHOLDERS.items():
        if placeholder not in text:
            continue
        source = ROOT / "results" / filename
        if not source.exists():
            print(f"missing {source}; leaving {placeholder} in place")
            continue
        table = extract_table(source.read_text())
        text = text.replace(placeholder, table)
        changed = True
        print(f"recorded {filename}")
    if changed:
        atomic_write_text(experiments, text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
